package emt

// Online embedding updates. Production recommenders retrain continuously
// and trickle row deltas into the serving tables; UpDLRM's workload axis
// is explicitly read/write. MutableTable extends the read-only Table
// contract with an additive delta operation plus a per-row version
// counter that the hot-row cache uses for coherence: a cached entry is
// stamped with the version observed at fill time and evicted when a
// newer version exists.
//
// Concurrency contract (matches the rest of the engine): any number of
// goroutines may read concurrently, but ApplyDelta must not race with
// readers or other writers. The core engine upholds this by serializing
// ApplyDeltas against RunBatch on each replica.

import "fmt"

// MutableTable is a Table that can absorb additive row updates.
type MutableTable interface {
	Table
	// ApplyDelta adds delta (len == Dim()) element-wise into row and
	// returns the row's new version. Versions start at 0 (never
	// written) and increment by one per applied delta.
	ApplyDelta(row int, delta []float32) uint64
	// Version returns the number of deltas applied to row so far.
	Version(row int) uint64
}

// ApplyDelta implements MutableTable. The version slice is allocated
// lazily so read-only DenseTables pay nothing.
func (t *DenseTable) ApplyDelta(row int, delta []float32) uint64 {
	if len(delta) != t.dim {
		panic(fmt.Sprintf("emt: delta len %d != dim %d", len(delta), t.dim))
	}
	checkRange(t.rows, t.dim, row, 0, t.dim, delta)
	vec := t.Row(row)
	for i, d := range delta {
		vec[i] += d
	}
	if t.versions == nil {
		t.versions = make([]uint64, t.rows)
	}
	t.versions[row]++
	return t.versions[row]
}

// Version implements MutableTable.
func (t *DenseTable) Version(row int) uint64 {
	if t.versions == nil {
		return 0
	}
	return t.versions[row]
}

// overlayRow is one materialized row of an Overlay.
type overlayRow struct {
	vec     []float32
	version uint64
}

// Overlay is a copy-on-write MutableTable over any read-only base.
// Untouched rows read through to the base; the first delta to a row
// materializes it (base values + delta) into an overlay map. This is how
// ProceduralTable-backed models absorb updates without densifying the
// whole table, and how engines sharing one base table across replicas
// (dlrm.Model.Clone shares Tables) keep their writes private.
//
// Reads are safe from concurrent goroutines as long as no ApplyDelta is
// in flight (plain map reads); writes follow the package contract above.
type Overlay struct {
	base Table
	rows map[int32]*overlayRow
}

// NewOverlay wraps base in an empty copy-on-write overlay.
func NewOverlay(base Table) *Overlay {
	return &Overlay{base: base, rows: make(map[int32]*overlayRow)}
}

// Rows implements Table.
func (o *Overlay) Rows() int { return o.base.Rows() }

// Dim implements Table.
func (o *Overlay) Dim() int { return o.base.Dim() }

// Base returns the wrapped read-only table.
func (o *Overlay) Base() Table { return o.base }

// Dirty returns the number of materialized (written) rows.
func (o *Overlay) Dirty() int { return len(o.rows) }

// ReadCols implements Table.
func (o *Overlay) ReadCols(row, col0, cols int, dst []float32) {
	if or, ok := o.rows[int32(row)]; ok {
		checkRange(o.base.Rows(), o.base.Dim(), row, col0, cols, dst)
		copy(dst[:cols], or.vec[col0:col0+cols])
		return
	}
	o.base.ReadCols(row, col0, cols, dst)
}

// ApplyDelta implements MutableTable. The first delta to a row copies the
// base values, so a zero delta leaves the observed values bit-identical
// (float32 x + 0.0 == x for every finite x the generators produce).
func (o *Overlay) ApplyDelta(row int, delta []float32) uint64 {
	dim := o.base.Dim()
	if len(delta) != dim {
		panic(fmt.Sprintf("emt: delta len %d != dim %d", len(delta), dim))
	}
	or, ok := o.rows[int32(row)]
	if !ok {
		or = &overlayRow{vec: make([]float32, dim)}
		o.base.ReadCols(row, 0, dim, or.vec)
		o.rows[int32(row)] = or
	}
	for i, d := range delta {
		or.vec[i] += d
	}
	or.version++
	return or.version
}

// Version implements MutableTable.
func (o *Overlay) Version(row int) uint64 {
	if or, ok := o.rows[int32(row)]; ok {
		return or.version
	}
	return 0
}

// AsMutable returns t itself when it already supports deltas, or wraps
// it in a fresh Overlay otherwise.
func AsMutable(t Table) MutableTable {
	if mt, ok := t.(MutableTable); ok {
		return mt
	}
	return NewOverlay(t)
}
