package emt

import (
	"math"
	"testing"
)

func TestDenseTableApplyDelta(t *testing.T) {
	tb := NewDense(4, 3)
	FillRandom(tb, 7, 0.1)
	want := make([]float32, 3)
	tb.ReadCols(2, 0, 3, want)

	if v := tb.Version(2); v != 0 {
		t.Fatalf("fresh row version = %d, want 0", v)
	}
	if v := tb.ApplyDelta(2, []float32{1, -2, 0.5}); v != 1 {
		t.Fatalf("first delta version = %d, want 1", v)
	}
	if v := tb.ApplyDelta(2, []float32{1, 0, 0}); v != 2 {
		t.Fatalf("second delta version = %d, want 2", v)
	}
	got := make([]float32, 3)
	tb.ReadCols(2, 0, 3, got)
	exp := []float32{want[0] + 2, want[1] - 2, want[2] + 0.5}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("col %d = %v, want %v", i, got[i], exp[i])
		}
	}
	// Untouched rows keep version 0.
	if v := tb.Version(0); v != 0 {
		t.Fatalf("untouched row version = %d, want 0", v)
	}
}

func TestOverlayCopyOnWrite(t *testing.T) {
	base := NewProcedural(100, 8, 42)
	ov := NewOverlay(base)
	if ov.Rows() != 100 || ov.Dim() != 8 {
		t.Fatalf("overlay shape %dx%d", ov.Rows(), ov.Dim())
	}

	baseRow := make([]float32, 8)
	base.ReadCols(5, 0, 8, baseRow)

	// Pre-write reads pass through to the base bit-for-bit.
	got := make([]float32, 8)
	ov.ReadCols(5, 0, 8, got)
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(baseRow[i]) {
			t.Fatalf("pass-through col %d differs", i)
		}
	}

	delta := make([]float32, 8)
	delta[3] = 1.5
	if v := ov.ApplyDelta(5, delta); v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	ov.ReadCols(5, 0, 8, got)
	for i := range got {
		want := baseRow[i]
		if i == 3 {
			want += 1.5
		}
		if got[i] != want {
			t.Fatalf("post-delta col %d = %v, want %v", i, got[i], want)
		}
	}
	if ov.Dirty() != 1 {
		t.Fatalf("Dirty = %d, want 1", ov.Dirty())
	}

	// The base is untouched, and other rows still read through.
	fresh := make([]float32, 8)
	base.ReadCols(5, 0, 8, fresh)
	for i := range fresh {
		if math.Float32bits(fresh[i]) != math.Float32bits(baseRow[i]) {
			t.Fatalf("base mutated at col %d", i)
		}
	}
	ov.ReadCols(6, 0, 8, got)
	base.ReadCols(6, 0, 8, fresh)
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(fresh[i]) {
			t.Fatalf("untouched row diverged at col %d", i)
		}
	}

	// Partial-column reads hit the overlay too.
	part := make([]float32, 2)
	ov.ReadCols(5, 3, 2, part)
	if part[0] != baseRow[3]+1.5 {
		t.Fatalf("partial read = %v, want %v", part[0], baseRow[3]+1.5)
	}
}

func TestOverlayZeroDeltaBitIdentical(t *testing.T) {
	base := NewProcedural(64, 16, 99)
	ov := NewOverlay(base)
	zero := make([]float32, 16)
	for row := 0; row < 64; row += 7 {
		ov.ApplyDelta(row, zero)
	}
	a, b := make([]float32, 16), make([]float32, 16)
	for row := 0; row < 64; row++ {
		ov.ReadCols(row, 0, 16, a)
		base.ReadCols(row, 0, 16, b)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("row %d col %d: zero delta changed bits %x -> %x",
					row, i, math.Float32bits(b[i]), math.Float32bits(a[i]))
			}
		}
	}
}

func TestAsMutable(t *testing.T) {
	dense := NewDense(2, 2)
	if mt := AsMutable(dense); mt != Table(dense) {
		t.Fatal("AsMutable should return the DenseTable itself")
	}
	proc := NewProcedural(10, 4, 1)
	mt := AsMutable(proc)
	if _, ok := mt.(*Overlay); !ok {
		t.Fatalf("AsMutable(procedural) = %T, want *Overlay", mt)
	}
}
