package emt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDenseTableBasics(t *testing.T) {
	tb := NewDense(4, 3)
	if tb.Rows() != 4 || tb.Dim() != 3 {
		t.Fatalf("shape = %dx%d", tb.Rows(), tb.Dim())
	}
	copy(tb.Row(2), []float32{1, 2, 3})
	dst := make([]float32, 3)
	ReadRow(tb, 2, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("ReadRow = %v", dst)
	}
	part := make([]float32, 2)
	tb.ReadCols(2, 1, 2, part)
	if part[0] != 2 || part[1] != 3 {
		t.Fatalf("ReadCols = %v", part)
	}
	if got := SizeBytes(tb); got != 4*3*4 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestDenseTablePanics(t *testing.T) {
	tb := NewDense(2, 2)
	cases := []struct {
		name string
		fn   func()
	}{
		{"row high", func() { tb.ReadCols(2, 0, 1, make([]float32, 1)) }},
		{"row negative", func() { tb.ReadCols(-1, 0, 1, make([]float32, 1)) }},
		{"col past end", func() { tb.ReadCols(0, 1, 2, make([]float32, 2)) }},
		{"dst short", func() { tb.ReadCols(0, 0, 2, make([]float32, 1)) }},
		{"bad shape", func() { NewDense(0, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestProceduralDeterministicAndSeedSensitive(t *testing.T) {
	a := NewProcedural(100, 8, 42)
	b := NewProcedural(100, 8, 42)
	c := NewProcedural(100, 8, 43)
	bufA := make([]float32, 8)
	bufB := make([]float32, 8)
	bufC := make([]float32, 8)
	diff := false
	for row := 0; row < 100; row += 7 {
		ReadRow(a, row, bufA)
		ReadRow(b, row, bufB)
		ReadRow(c, row, bufC)
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("same-seed tables differ at (%d,%d)", row, i)
			}
			if bufA[i] != bufC[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatalf("different seeds produced identical tables")
	}
}

func TestProceduralValueRange(t *testing.T) {
	tb := NewProcedural(1000, 16, 7)
	buf := make([]float32, 16)
	var minV, maxV float32 = 1, -1
	for row := 0; row < 1000; row += 13 {
		ReadRow(tb, row, buf)
		for _, v := range buf {
			if v < -0.05 || v >= 0.05 {
				t.Fatalf("value %v outside [-0.05, 0.05)", v)
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	// The range should actually be exercised, not collapse to a constant.
	if maxV-minV < 0.05 {
		t.Fatalf("values span too small: [%v, %v]", minV, maxV)
	}
}

func TestProceduralColumnSlicesConsistent(t *testing.T) {
	// Reading a row in column slices must equal reading it whole — the
	// UPMEM tiles depend on this.
	tb := NewProcedural(50, 32, 99)
	whole := make([]float32, 32)
	ReadRow(tb, 17, whole)
	for _, nc := range []int{2, 4, 8, 16} {
		part := make([]float32, nc)
		for col0 := 0; col0 < 32; col0 += nc {
			tb.ReadCols(17, col0, nc, part)
			for i := 0; i < nc; i++ {
				if part[i] != whole[col0+i] {
					t.Fatalf("nc=%d col0=%d: slice %v != whole %v", nc, col0, part[i], whole[col0+i])
				}
			}
		}
	}
}

func TestBagMatchesManualSum(t *testing.T) {
	tb := NewDense(5, 3)
	for r := 0; r < 5; r++ {
		for c := 0; c < 3; c++ {
			tb.Row(r)[c] = float32(r*10 + c)
		}
	}
	out := make([]float32, 3)
	Bag(tb, []int{1, 3, 3}, out)
	// rows 1,3,3: (10,11,12)+(30,31,32)+(30,31,32) = (70,73,76)
	if out[0] != 70 || out[1] != 73 || out[2] != 76 {
		t.Fatalf("Bag = %v", out)
	}
	// Empty bag yields zeros.
	Bag(tb, nil, out)
	if out[0] != 0 || out[1] != 0 || out[2] != 0 {
		t.Fatalf("empty Bag = %v", out)
	}
}

func TestBagIntoMatchesBag(t *testing.T) {
	tb := NewProcedural(200, 8, 5)
	idx := []int{3, 77, 3, 199, 0, 42}
	a := make([]float32, 8)
	b := make([]float32, 8)
	scratch := make([]float32, 8)
	Bag(tb, idx, a)
	BagInto(tb, idx, b, scratch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BagInto differs: %v vs %v", a, b)
		}
	}
}

// Property: Bag is order-invariant and additive over index multiset splits.
func TestBagPropertiesQuick(t *testing.T) {
	tb := NewProcedural(64, 4, 11)
	f := func(rawIdx []uint8, splitRaw uint8) bool {
		idx := make([]int, len(rawIdx))
		for i, v := range rawIdx {
			idx[i] = int(v) % 64
		}
		out := make([]float32, 4)
		Bag(tb, idx, out)
		// Reversed order.
		rev := make([]int, len(idx))
		for i, v := range idx {
			rev[len(idx)-1-i] = v
		}
		outRev := make([]float32, 4)
		Bag(tb, rev, outRev)
		for i := range out {
			if math.Abs(float64(out[i]-outRev[i])) > 1e-4 {
				return false
			}
		}
		// Split additivity: Bag(idx) ~= Bag(idx[:k]) + Bag(idx[k:]).
		if len(idx) == 0 {
			return true
		}
		k := int(splitRaw) % (len(idx) + 1)
		left := make([]float32, 4)
		right := make([]float32, 4)
		Bag(tb, idx[:k], left)
		Bag(tb, idx[k:], right)
		for i := range out {
			if math.Abs(float64(out[i]-(left[i]+right[i]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := NewDense(10, 4)
	b := NewDense(10, 4)
	FillRandom(a, 3, 0.1)
	FillRandom(b, 3, 0.1)
	for i := range a.data {
		if a.data[i] != b.data[i] {
			t.Fatalf("FillRandom not deterministic at %d", i)
		}
		if a.data[i] < -0.1 || a.data[i] >= 0.1 {
			t.Fatalf("FillRandom value %v outside scale", a.data[i])
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(NewProcedural(10, 4, 1)); err != nil {
		t.Fatalf("Validate procedural: %v", err)
	}
	d := NewDense(3, 2)
	if err := Validate(d); err != nil {
		t.Fatalf("Validate dense: %v", err)
	}
	d.Row(1)[0] = float32(math.NaN())
	if err := Validate(d); err == nil {
		t.Fatalf("Validate must reject NaN")
	}
	d.Row(1)[0] = float32(math.Inf(1))
	if err := Validate(d); err == nil {
		t.Fatalf("Validate must reject Inf")
	}
}

func TestBagPanicsOnBadOut(t *testing.T) {
	tb := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for short out")
		}
	}()
	Bag(tb, []int{0}, make([]float32, 2))
}
