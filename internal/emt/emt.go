// Package emt models DLRM embedding tables (EMTs) and the multi-hot
// lookup-and-reduce ("embedding bag") operation that dominates DLRM
// inference (paper §2.1).
//
// Two storage backends implement the Table interface:
//
//   - DenseTable keeps real float32 rows in memory — the natural choice for
//     examples and tests.
//   - ProceduralTable derives every value from a hash of (seed, row, col),
//     which lets full paper-scale tables (6M rows x 32 dims x 8 tables)
//     "exist" in O(1) memory. The UPMEM simulator charges timing for the
//     bytes a real MRAM would move while values come from the generator, so
//     functional results remain verifiable against the CPU reference.
package emt

import (
	"fmt"
	"math"
)

// BytesPerElem is the size of one embedding element. The paper assumes
// 32-bit feature values throughout (§3.1).
const BytesPerElem = 4

// Table is a read-only embedding table of Rows() vectors of Dim() float32s.
type Table interface {
	// Rows returns the number of embedding vectors (distinct categorical
	// values, "#Items" in Table 1).
	Rows() int
	// Dim returns the embedding dimension (32 in the paper's evaluation).
	Dim() int
	// ReadCols copies cols values of row starting at column col0 into dst.
	// It panics if the range is out of bounds or len(dst) < cols.
	ReadCols(row, col0, cols int, dst []float32)
}

// ReadRow copies the full row into dst (len >= Dim()).
func ReadRow(t Table, row int, dst []float32) {
	t.ReadCols(row, 0, t.Dim(), dst)
}

// SizeBytes returns the storage footprint of a table: Rows * Dim * 4B.
func SizeBytes(t Table) int64 {
	return int64(t.Rows()) * int64(t.Dim()) * BytesPerElem
}

func checkRange(rows, dim, row, col0, cols int, dst []float32) {
	if row < 0 || row >= rows {
		panic(fmt.Sprintf("emt: row %d out of range [0,%d)", row, rows))
	}
	if col0 < 0 || cols < 0 || col0+cols > dim {
		panic(fmt.Sprintf("emt: cols [%d,%d) out of range [0,%d)", col0, col0+cols, dim))
	}
	if len(dst) < cols {
		panic(fmt.Sprintf("emt: dst len %d < cols %d", len(dst), cols))
	}
}

// DenseTable stores rows contiguously in memory.
type DenseTable struct {
	rows, dim int
	data      []float32
	// versions counts ApplyDelta calls per row; nil until the first
	// write (see mutable.go).
	versions []uint64
}

// NewDense allocates a zeroed rows x dim table.
func NewDense(rows, dim int) *DenseTable {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("emt: invalid dense table shape %dx%d", rows, dim))
	}
	return &DenseTable{rows: rows, dim: dim, data: make([]float32, rows*dim)}
}

// Rows implements Table.
func (t *DenseTable) Rows() int { return t.rows }

// Dim implements Table.
func (t *DenseTable) Dim() int { return t.dim }

// ReadCols implements Table.
func (t *DenseTable) ReadCols(row, col0, cols int, dst []float32) {
	checkRange(t.rows, t.dim, row, col0, cols, dst)
	base := row * t.dim
	copy(dst[:cols], t.data[base+col0:base+col0+cols])
}

// Row returns the storage for row as a mutable slice (for initialization).
func (t *DenseTable) Row(row int) []float32 {
	return t.data[row*t.dim : (row+1)*t.dim]
}

// ProceduralTable computes values on demand from a 64-bit mix of
// (seed, row, col). Values are uniform in [-0.05, 0.05), the usual scale
// for embedding initialization, so reductions stay well-conditioned even
// for reduction degrees in the hundreds.
type ProceduralTable struct {
	rows, dim int
	seed      uint64
}

// NewProcedural returns a procedural table.
func NewProcedural(rows, dim int, seed uint64) *ProceduralTable {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("emt: invalid procedural table shape %dx%d", rows, dim))
	}
	return &ProceduralTable{rows: rows, dim: dim, seed: seed}
}

// Rows implements Table.
func (t *ProceduralTable) Rows() int { return t.rows }

// Dim implements Table.
func (t *ProceduralTable) Dim() int { return t.dim }

// mix is a strong 64-bit finalizer (SplitMix64 style).
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// valueAt returns the deterministic element at (row, col).
func (t *ProceduralTable) valueAt(row, col int) float32 {
	h := mix(t.seed ^ mix(uint64(row)*0x9e3779b97f4a7c15^uint64(col)+0x632be59bd9b4e019))
	// Map the top 24 bits to [-0.05, 0.05).
	u := float64(h>>40) / (1 << 24) // [0,1)
	return float32((u - 0.5) * 0.1)
}

// ReadCols implements Table.
func (t *ProceduralTable) ReadCols(row, col0, cols int, dst []float32) {
	checkRange(t.rows, t.dim, row, col0, cols, dst)
	for c := 0; c < cols; c++ {
		dst[c] = t.valueAt(row, col0+c)
	}
}

// Bag performs the CPU-reference embedding-bag operation: it sums the
// embedding vectors of all indices into out (len == Dim). This is the
// operation UpDLRM offloads to DPUs; the engine's tests check the offloaded
// result against Bag.
func Bag(t Table, indices []int, out []float32) {
	if len(out) != t.Dim() {
		panic(fmt.Sprintf("emt: Bag out len %d != dim %d", len(out), t.Dim()))
	}
	for i := range out {
		out[i] = 0
	}
	buf := make([]float32, t.Dim())
	for _, idx := range indices {
		ReadRow(t, idx, buf)
		for i := range out {
			out[i] += buf[i]
		}
	}
}

// BagInto is like Bag but reuses the caller-provided scratch buffer
// (len >= Dim) to avoid per-call allocation in hot loops.
func BagInto(t Table, indices []int, out, scratch []float32) {
	if len(out) != t.Dim() {
		panic(fmt.Sprintf("emt: BagInto out len %d != dim %d", len(out), t.Dim()))
	}
	if len(scratch) < t.Dim() {
		panic(fmt.Sprintf("emt: BagInto scratch len %d < dim %d", len(scratch), t.Dim()))
	}
	for i := range out {
		out[i] = 0
	}
	for _, idx := range indices {
		t.ReadCols(idx, 0, t.Dim(), scratch)
		for i := range out {
			out[i] += scratch[i]
		}
	}
}

// FillRandom initializes a dense table with uniform values in
// [-scale, scale) using the deterministic generator behind seed.
func FillRandom(t *DenseTable, seed uint64, scale float32) {
	s := mix(seed)
	for i := range t.data {
		s = mix(s + 0x9e3779b97f4a7c15)
		u := float64(s>>40) / (1 << 24)
		t.data[i] = float32((2*u - 1)) * scale
	}
}

// Validate sanity-checks a table's shape against NaN/Inf in a sample of
// rows. It is cheap and used by engine constructors to fail fast on broken
// custom backends.
func Validate(t Table) error {
	if t.Rows() <= 0 || t.Dim() <= 0 {
		return fmt.Errorf("emt: invalid table shape %dx%d", t.Rows(), t.Dim())
	}
	buf := make([]float32, t.Dim())
	probe := []int{0, t.Rows() / 2, t.Rows() - 1}
	for _, row := range probe {
		ReadRow(t, row, buf)
		for c, v := range buf {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("emt: non-finite value at (%d,%d)", row, c)
			}
		}
	}
	return nil
}
