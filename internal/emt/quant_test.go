package emt

import (
	"math"
	"testing"
)

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	src := NewProcedural(500, 16, 3)
	q := Quantize(src)
	if q.Rows() != 500 || q.Dim() != 16 {
		t.Fatalf("shape %dx%d", q.Rows(), q.Dim())
	}
	maxAbs, meanAbs, err := QuantError(src, q, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Values live in [-0.05, 0.05); int8 symmetric quantization bounds
	// the per-element error by scale/2 = maxAbs(row)/254.
	if maxAbs > 0.05/127 {
		t.Fatalf("max error %v exceeds quantization bound", maxAbs)
	}
	if meanAbs <= 0 || meanAbs > maxAbs {
		t.Fatalf("mean error %v inconsistent (max %v)", meanAbs, maxAbs)
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	d := NewDense(3, 4)
	copy(d.Row(1), []float32{0.01, -0.02, 0.03, -0.04})
	q := Quantize(d) // rows 0 and 2 are all-zero
	buf := make([]float32, 4)
	ReadRow(q, 0, buf)
	for _, v := range buf {
		if v != 0 {
			t.Fatalf("zero row dequantized to %v", buf)
		}
	}
	ReadRow(q, 1, buf)
	if math.Abs(float64(buf[3]+0.04)) > 0.001 {
		t.Fatalf("row 1 dequantized to %v", buf)
	}
}

func TestQuantizedBag(t *testing.T) {
	src := NewProcedural(200, 8, 9)
	q := Quantize(src)
	idx := []int{5, 77, 123, 5}
	want := make([]float32, 8)
	got := make([]float32, 8)
	Bag(src, idx, want)
	Bag(q, idx, got)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 4*0.05/127 {
			t.Fatalf("quantized bag drifted: %v vs %v", got, want)
		}
	}
}

func TestQuantizedSize(t *testing.T) {
	src := NewProcedural(100, 32, 1)
	q := Quantize(src)
	// fp32: 100*32*4 = 12800; int8: 100*32 + 100*4 = 3600 (3.55x smaller).
	if SizeBytes(src) != 12800 {
		t.Fatalf("source size %d", SizeBytes(src))
	}
	if q.SizeBytesQuantized() != 3600 {
		t.Fatalf("quantized size %d", q.SizeBytesQuantized())
	}
}

func TestQuantizedColumnSlices(t *testing.T) {
	src := NewProcedural(50, 32, 4)
	q := Quantize(src)
	whole := make([]float32, 32)
	ReadRow(q, 20, whole)
	part := make([]float32, 8)
	q.ReadCols(20, 8, 8, part)
	for i := 0; i < 8; i++ {
		if part[i] != whole[8+i] {
			t.Fatalf("slice read differs at %d", i)
		}
	}
}

func TestQuantErrorValidation(t *testing.T) {
	src := NewProcedural(10, 4, 1)
	q := Quantize(NewProcedural(20, 4, 1))
	if _, _, err := QuantError(src, q, 10); err == nil {
		t.Fatalf("shape mismatch accepted")
	}
	q2 := Quantize(src)
	if _, _, err := QuantError(src, q2, 0); err == nil {
		t.Fatalf("zero sample accepted")
	}
}
