package emt

import (
	"fmt"
	"math"
)

// QuantizedTable stores embeddings as int8 with one scale per row —
// the mixed-precision trick the related work (EVStore, §5) uses to fit
// more vectors per byte of cache/MRAM. Lookups dequantize on the fly;
// SizeBytesQuantized reports the compressed footprint the timing model
// should charge.
type QuantizedTable struct {
	rows, dim int
	data      []int8
	scale     []float32 // per-row dequantization scale
}

// QuantizedBytesPerElem is the storage per element (excluding the
// per-row scale).
const QuantizedBytesPerElem = 1

// Quantize converts any table to int8 row-wise symmetric quantization.
func Quantize(src Table) *QuantizedTable {
	rows, dim := src.Rows(), src.Dim()
	q := &QuantizedTable{
		rows:  rows,
		dim:   dim,
		data:  make([]int8, rows*dim),
		scale: make([]float32, rows),
	}
	buf := make([]float32, dim)
	for r := 0; r < rows; r++ {
		ReadRow(src, r, buf)
		var maxAbs float32
		for _, v := range buf {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			q.scale[r] = 1
			continue
		}
		s := maxAbs / 127
		q.scale[r] = s
		for c, v := range buf {
			iv := int32(math.RoundToEven(float64(v / s)))
			if iv > 127 {
				iv = 127
			}
			if iv < -127 {
				iv = -127
			}
			q.data[r*dim+c] = int8(iv)
		}
	}
	return q
}

// Rows implements Table.
func (t *QuantizedTable) Rows() int { return t.rows }

// Dim implements Table.
func (t *QuantizedTable) Dim() int { return t.dim }

// ReadCols implements Table, dequantizing on the fly.
func (t *QuantizedTable) ReadCols(row, col0, cols int, dst []float32) {
	checkRange(t.rows, t.dim, row, col0, cols, dst)
	s := t.scale[row]
	base := row*t.dim + col0
	for c := 0; c < cols; c++ {
		dst[c] = float32(t.data[base+c]) * s
	}
}

// SizeBytesQuantized returns the compressed footprint: one byte per
// element plus a 4-byte scale per row.
func (t *QuantizedTable) SizeBytesQuantized() int64 {
	return int64(t.rows)*int64(t.dim)*QuantizedBytesPerElem + int64(t.rows)*4
}

// QuantError reports the maximum absolute and mean absolute
// dequantization error of q against its source over a row sample.
func QuantError(src Table, q *QuantizedTable, sampleRows int) (maxAbs, meanAbs float64, err error) {
	if src.Rows() != q.Rows() || src.Dim() != q.Dim() {
		return 0, 0, fmt.Errorf("emt: quantized shape %dx%d != source %dx%d",
			q.Rows(), q.Dim(), src.Rows(), src.Dim())
	}
	if sampleRows <= 0 {
		return 0, 0, fmt.Errorf("emt: sampleRows = %d", sampleRows)
	}
	if sampleRows > src.Rows() {
		sampleRows = src.Rows()
	}
	step := src.Rows() / sampleRows
	if step == 0 {
		step = 1
	}
	a := make([]float32, src.Dim())
	b := make([]float32, src.Dim())
	var sum float64
	var count int64
	for r := 0; r < src.Rows(); r += step {
		ReadRow(src, r, a)
		ReadRow(q, r, b)
		for c := range a {
			d := math.Abs(float64(a[c]) - float64(b[c]))
			if d > maxAbs {
				maxAbs = d
			}
			sum += d
			count++
		}
	}
	return maxAbs, sum / float64(count), nil
}
