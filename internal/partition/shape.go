// Package partition implements the paper's core contribution: embedding
// table partitioning across DPUs at three levels — uniform tile-shape
// optimization (§3.1), frequency-aware non-uniform bin-packing (§3.2),
// and cache-aware non-uniform packing that balances combined EMT+cache
// accesses (§3.3, Algorithm 1).
//
// Geometry: an EMT of R rows x C columns served by N DPUs is cut into
// C/N_c column slices and P = N/(C/N_c) row partitions; the tile at
// (partition p, slice s) lives on its own DPU. A lookup of row r fans out
// to every slice of r's partition and reads N_c*4 bytes per slice; each
// DPU aggregates its slice of the per-sample partial sum, which the host
// concatenates and adds across partitions (Figure 4).
package partition

import (
	"fmt"

	"updlrm/internal/upmem"
)

// MaxTileElems is constraint (2) of the paper: N_r * N_c = R*C/N_dpu must
// not exceed 1.6e7 elements (64 MB of 4-byte values).
const MaxTileElems = 16_000_000

// Shape fixes the tile geometry for one EMT.
type Shape struct {
	// Nc is the number of columns per tile (values per MRAM read).
	Nc int
	// Slices is C/Nc, the number of column slices.
	Slices int
	// Parts is the number of row partitions; Slices*Parts DPUs serve the
	// table.
	Parts int
}

// DPUs returns the number of DPUs the shape occupies.
func (s Shape) DPUs() int { return s.Slices * s.Parts }

// DPUAt maps (partition, slice) to the table-local DPU index.
func (s Shape) DPUAt(part, slice int) int { return part*s.Slices + slice }

// Workload carries the estimator inputs of §3.1's cost model.
type Workload struct {
	// BatchSize is samples per inference batch (64 in the paper).
	BatchSize int
	// AvgReduction is the expected multi-hot degree.
	AvgReduction float64
	// Tables is the number of EMTs sharing the batch (8 in §4.1). Host
	// transfers are paid once across all tables' DPUs while kernels run
	// concurrently, so the estimator must cost transfers globally.
	// Zero means 1.
	Tables int
	// WriteRatio is the expected embedding-update traffic as a fraction
	// of lookup traffic (row deltas per lookup). Zero models the frozen
	// tables of a read-only deployment; UpDLRM's "write" presets set it,
	// making planners charge the MRAM read-modify-write and delta-push
	// cost each candidate shape would pay.
	WriteRatio float64
}

// tables returns the effective table count.
func (w Workload) tables() int {
	if w.Tables <= 0 {
		return 1
	}
	return w.Tables
}

// Estimate is the per-batch embedding-layer time prediction for a shape,
// the three terms of Equation (1).
type Estimate struct {
	// CPUToDPUNs is T_c-comm: pushing indices/offsets to the DPUs.
	CPUToDPUNs float64
	// LookupNs is T_lkp: the DPU kernel time.
	LookupNs float64
	// DPUToCPUNs is T_d-comm: pulling per-sample partial sums back.
	DPUToCPUNs float64
	// UpdateNs is the modeled embedding-update cost the workload's
	// WriteRatio implies: pushing row deltas plus the per-slice MRAM
	// read-modify-writes applying them. Zero for read-only workloads.
	UpdateNs float64
}

// TotalNs returns the objective of Equation (1), extended with the
// write-path term when the workload carries update traffic.
func (e Estimate) TotalNs() float64 {
	return e.CPUToDPUNs + e.LookupNs + e.DPUToCPUNs + e.UpdateNs
}

// Shapes enumerates every feasible shape for an R x C table on ndpu DPUs
// under the paper's constraints: N_c = 2^k with 1 <= k <= 4 (3), N_c
// divides C, the slice count divides ndpu, and the tile fits MRAM (2).
func Shapes(rows, cols, ndpu int, cfg upmem.HWConfig) ([]Shape, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("partition: table shape %dx%d", rows, cols)
	}
	if ndpu <= 0 {
		return nil, fmt.Errorf("partition: ndpu = %d", ndpu)
	}
	var shapes []Shape
	for k := 1; k <= 4; k++ {
		nc := 1 << uint(k)
		if nc > cols || cols%nc != 0 {
			continue
		}
		slices := cols / nc
		if slices > ndpu || ndpu%slices != 0 {
			continue
		}
		parts := ndpu / slices
		nr := (rows + parts - 1) / parts
		if int64(nr)*int64(nc) > MaxTileElems {
			continue
		}
		if int64(nr)*int64(nc)*4 > cfg.MRAMBytes {
			continue
		}
		shapes = append(shapes, Shape{Nc: nc, Slices: slices, Parts: parts})
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("partition: no feasible shape for %dx%d on %d DPUs", rows, cols, ndpu)
	}
	return shapes, nil
}

// EstimateShape evaluates the §3.1 cost model for one shape assuming a
// balanced access distribution: per-partition lookups are
// batch*avgred/parts; index pushes pad to equal sizes (parallel path);
// result pulls are naturally equal-sized.
func EstimateShape(s Shape, w Workload, cfg upmem.HWConfig) Estimate {
	lookupsPerPart := float64(w.BatchSize) * w.AvgReduction / float64(s.Parts)
	readBytes := upmem.AlignMRAM(s.Nc * 4)

	// T_lkp: closed-form kernel bound for the busiest (here: any) DPU.
	lat, _ := cfg.MRAMReadLatency(readBytes)
	instr := float64(cfg.LookupOverheadInstr + cfg.AccInstrPerElem*s.Nc)
	occ := cfg.DMAEngineCycles + cfg.DMAPerByteCycles*float64(readBytes)
	pipeline := lookupsPerPart * instr
	dma := lookupsPerPart * occ
	tasklet := lookupsPerPart * (lat + instr) / float64(cfg.Tasklets)
	kernelCycles := pipeline
	if dma > kernelCycles {
		kernelCycles = dma
	}
	if tasklet > kernelCycles {
		kernelCycles = tasklet
	}
	lookupNs := cfg.KernelLaunchNs + cfg.CyclesToNs(kernelCycles)

	// T_c-comm: every slice DPU of a partition receives that partition's
	// index list plus per-sample offsets. The push covers all tables'
	// DPUs in one padded rank transfer, mirroring the engine.
	totalDPUs := s.DPUs() * w.tables()
	idxBytesPerDPU := int64(lookupsPerPart*4) + int64(w.BatchSize+1)*4
	pushSizes := make([]int64, totalDPUs)
	for i := range pushSizes {
		pushSizes[i] = idxBytesPerDPU
	}
	push := cfg.TransferTime(pushSizes, true, upmem.Push)

	// T_d-comm: each DPU returns one N_c-wide partial sum per sample,
	// again pulled across all tables at once.
	resBytesPerDPU := int64(w.BatchSize) * int64(s.Nc) * 4
	pullSizes := make([]int64, totalDPUs)
	for i := range pullSizes {
		pullSizes[i] = resBytesPerDPU
	}
	pull := cfg.TransferTime(pullSizes, false, upmem.Pull)

	// Write path: WriteRatio row deltas per lookup. Each delta pushes a
	// 4 B row descriptor plus its N_c*4 B slice payload to every slice
	// DPU of the row's partition, then the DPU read-modify-writes the
	// aligned tile row (read old + write new on the same DMA curve).
	var updateNs float64
	if w.WriteRatio > 0 {
		writesPerPart := lookupsPerPart * w.WriteRatio
		wPipeline := writesPerPart * instr
		wDMA := writesPerPart * 2 * occ
		wTasklet := writesPerPart * (2*lat + instr) / float64(cfg.Tasklets)
		wCycles := wPipeline
		if wDMA > wCycles {
			wCycles = wDMA
		}
		if wTasklet > wCycles {
			wCycles = wTasklet
		}
		deltaBytesPerDPU := int64(writesPerPart * float64(4+s.Nc*4))
		deltaSizes := make([]int64, totalDPUs)
		for i := range deltaSizes {
			deltaSizes[i] = deltaBytesPerDPU
		}
		deltaPush := cfg.TransferTime(deltaSizes, true, upmem.Push)
		updateNs = deltaPush.Ns + cfg.KernelLaunchNs + cfg.CyclesToNs(wCycles)
	}

	return Estimate{CPUToDPUNs: push.Ns, LookupNs: lookupNs, DPUToCPUNs: pull.Ns, UpdateNs: updateNs}
}

// OptimalShape exhaustively searches the feasible shapes (the paper notes
// the constraints shrink the space enough for exhaustive search) and
// returns the one minimizing Equation (1).
func OptimalShape(rows, cols, ndpu int, w Workload, cfg upmem.HWConfig) (Shape, Estimate, error) {
	if w.BatchSize <= 0 || w.AvgReduction <= 0 {
		return Shape{}, Estimate{}, fmt.Errorf("partition: workload %+v", w)
	}
	shapes, err := Shapes(rows, cols, ndpu, cfg)
	if err != nil {
		return Shape{}, Estimate{}, err
	}
	best := shapes[0]
	bestEst := EstimateShape(best, w, cfg)
	for _, s := range shapes[1:] {
		est := EstimateShape(s, w, cfg)
		if est.TotalNs() < bestEst.TotalNs() {
			best, bestEst = s, est
		}
	}
	return best, bestEst, nil
}

// ShapeWithNc returns the feasible shape with the requested N_c, for
// experiments that pin N_c (Figures 9 and 10 fix it to 2, 4, 8).
func ShapeWithNc(rows, cols, ndpu, nc int, cfg upmem.HWConfig) (Shape, error) {
	shapes, err := Shapes(rows, cols, ndpu, cfg)
	if err != nil {
		return Shape{}, err
	}
	for _, s := range shapes {
		if s.Nc == nc {
			return s, nil
		}
	}
	return Shape{}, fmt.Errorf("partition: no feasible shape with Nc=%d for %dx%d on %d DPUs", nc, rows, cols, ndpu)
}
