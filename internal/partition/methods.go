package partition

import (
	"fmt"
	"sort"

	"updlrm/internal/grace"
	"updlrm/internal/upmem"
)

// Uniform builds the §3.1 plan: rows split into Parts contiguous blocks
// of (near-)equal size. freq is optional and only fills the diagnostic
// PartLoad.
func Uniform(rows, cols int, shape Shape, freq []int64) (*Plan, error) {
	if err := checkInputs(rows, cols, shape, freq); err != nil {
		return nil, err
	}
	p := &Plan{
		Method:   MethodUniform,
		Rows:     rows,
		Cols:     cols,
		Shape:    shape,
		RowPart:  make([]int32, rows),
		PartLoad: make([]int64, shape.Parts),
	}
	for r := 0; r < rows; r++ {
		part := r * shape.Parts / rows
		p.RowPart[r] = int32(part)
		if freq != nil {
			p.PartLoad[part] += freq[r]
		}
	}
	return p, nil
}

// NonUniform builds the §3.2 plan: rows sorted by access frequency
// descending are greedily placed on the least-loaded partition with spare
// MRAM capacity (classical bin packing with a fixed number of bins).
// Zero-frequency rows are then spread to equalize row counts.
func NonUniform(rows, cols int, shape Shape, freq []int64, cfg upmem.HWConfig) (*Plan, error) {
	if err := checkInputs(rows, cols, shape, freq); err != nil {
		return nil, err
	}
	if freq == nil {
		return nil, fmt.Errorf("partition: non-uniform partitioning requires a frequency profile")
	}
	capRows, err := partCapacityRows(rows, cols, shape, cfg, 0)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Method:   MethodNonUniform,
		Rows:     rows,
		Cols:     cols,
		Shape:    shape,
		RowPart:  make([]int32, rows),
		PartLoad: make([]int64, shape.Parts),
	}
	packRows(p, freq, capRows, nil)
	return p, nil
}

// CacheAwareConfig parameterizes Algorithm 1.
type CacheAwareConfig struct {
	// CapacityFrac is the cache budget as a fraction of the total
	// storage the mined lists require (the §3.3 sensitivity knob: 0.4,
	// 0.7, 1.0). Zero disables caching, degenerating to NonUniform.
	CapacityFrac float64
	// WriteRatio is the expected row-delta rate per lookup (see
	// Workload.WriteRatio). A delta to any member row invalidates the
	// group's cached subset sums, which must be recomputed and
	// rewritten — 2^n-1 entries of N_c values for an n-item group. The
	// planner discounts each list's read benefit by that modeled
	// refresh traffic and refuses lists whose effective benefit goes
	// non-positive, so write-heavy presets cache fewer (and different)
	// lists than their read-only counterparts.
	WriteRatio float64
}

// effectiveBenefit returns the list's read savings minus the modeled
// refresh cost its members' updates would incur, in the same
// MRAM-read-equivalents unit PartLoad uses.
func effectiveBenefit(l grace.List, freq []int64, nc int, writeRatio float64) int64 {
	if writeRatio <= 0 {
		return l.Benefit
	}
	var memberFreq int64
	for _, item := range l.Items {
		memberFreq += freq[item]
	}
	// Each member update rewrites the group's stored entries; one
	// stored entry is one tile-row (N_c*4 B) write ≈ one read
	// equivalent.
	refreshRows := float64(grace.StorageBytes(len(l.Items), nc)) / float64(nc*4)
	writeCost := int64(writeRatio * float64(memberFreq) * refreshRows)
	return l.Benefit - writeCost
}

// CacheAware builds the §3.3 plan per Algorithm 1: cache lists (highest
// benefit first) land on the least-loaded partition with cache headroom,
// bringing their member rows along and crediting the saved reads; the
// remaining rows follow the non-uniform packing into the EMT region.
func CacheAware(rows, cols int, shape Shape, freq []int64, lists []grace.List,
	cfg upmem.HWConfig, ca CacheAwareConfig) (*Plan, error) {
	if err := checkInputs(rows, cols, shape, freq); err != nil {
		return nil, err
	}
	if freq == nil {
		return nil, fmt.Errorf("partition: cache-aware partitioning requires a frequency profile")
	}
	if ca.CapacityFrac < 0 || ca.CapacityFrac > 1 {
		return nil, fmt.Errorf("partition: CapacityFrac = %v", ca.CapacityFrac)
	}
	seen := make(map[int32]bool)
	for _, l := range lists {
		for _, item := range l.Items {
			if item < 0 || int(item) >= rows {
				return nil, fmt.Errorf("partition: cache list item %d out of [0,%d)", item, rows)
			}
			if seen[item] {
				return nil, fmt.Errorf("partition: item %d appears in multiple cache lists", item)
			}
			seen[item] = true
		}
	}

	// The MRAM of each DPU splits between EMT rows and cached partial
	// sums (§3.3). Reserve an equal row share per partition; the rest is
	// the hardware ceiling for that partition's cache region. Admission
	// is additionally bounded globally by CapacityFrac of the storage the
	// full list set requires — the paper's 40%/70%/100% sensitivity knob.
	required := grace.TotalStorageBytes(lists, shape.Nc)
	globalBudget := int64(ca.CapacityFrac * float64(required))
	rowShareBytes := int64((rows+shape.Parts-1)/shape.Parts) * int64(shape.Nc) * 4
	partCacheCap := cfg.MRAMBytes - rowShareBytes
	if partCacheCap < 0 {
		partCacheCap = 0
	}
	capRows, err := partCapacityRows(rows, cols, shape, cfg, 0)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		Method:             MethodCacheAware,
		Rows:               rows,
		Cols:               cols,
		Shape:              shape,
		RowPart:            make([]int32, rows),
		Lists:              lists,
		ListPart:           make([]int32, len(lists)),
		CacheBudgetPerPart: partCacheCap,
		CacheUsedPerPart:   make([]int64, shape.Parts),
		PartLoad:           make([]int64, shape.Parts),
	}

	// Phase 1 (Algorithm 1 lines 4-10): place each cache list on the
	// partition with the lowest current load that still has cache room.
	assigned := make([]bool, rows)
	rowsUsed := make([]int, shape.Parts)
	var globalUsed int64
	for g := range lists {
		p.ListPart[g] = -1
		eb := effectiveBenefit(lists[g], freq, shape.Nc, ca.WriteRatio)
		if eb <= 0 {
			continue // refresh traffic eats the savings; don't cache
		}
		storage := grace.StorageBytes(len(lists[g].Items), shape.Nc)
		if globalUsed+storage > globalBudget {
			continue // over the capacity fraction; items fall to phase 2
		}
		best := -1
		for part := 0; part < shape.Parts; part++ {
			if p.CacheUsedPerPart[part]+storage > partCacheCap {
				continue
			}
			if rowsUsed[part]+len(lists[g].Items) > capRows {
				continue
			}
			if best == -1 || p.PartLoad[part] < p.PartLoad[best] {
				best = part
			}
		}
		if best == -1 {
			continue // no partition with room; items fall to phase 2
		}
		p.ListPart[g] = int32(best)
		p.CacheUsedPerPart[best] += storage
		globalUsed += storage
		for _, item := range lists[g].Items {
			assigned[item] = true
			p.RowPart[item] = int32(best)
			rowsUsed[best]++
			p.PartLoad[best] += freq[item] // line 9
		}
		p.PartLoad[best] -= eb // line 10 (write-discounted benefit)
		if p.PartLoad[best] < 0 {
			p.PartLoad[best] = 0
		}
	}

	// Phase 2 (lines 11-15): remaining rows by descending frequency onto
	// the least-loaded partition with EMT capacity.
	packRows(p, freq, capRows, assigned)
	return p, nil
}

// Build dispatches on method, giving callers a single entry point.
func Build(method Method, rows, cols int, shape Shape, freq []int64,
	lists []grace.List, cfg upmem.HWConfig, ca CacheAwareConfig) (*Plan, error) {
	switch method {
	case MethodUniform:
		return Uniform(rows, cols, shape, freq)
	case MethodNonUniform:
		return NonUniform(rows, cols, shape, freq, cfg)
	case MethodCacheAware:
		return CacheAware(rows, cols, shape, freq, lists, cfg, ca)
	default:
		return nil, fmt.Errorf("partition: unknown method %d", method)
	}
}

// checkInputs validates the shared preconditions.
func checkInputs(rows, cols int, shape Shape, freq []int64) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("partition: table %dx%d", rows, cols)
	}
	if shape.Parts <= 0 || shape.Slices <= 0 || shape.Nc <= 0 {
		return fmt.Errorf("partition: shape %+v", shape)
	}
	if cols%shape.Nc != 0 || shape.Slices != cols/shape.Nc {
		return fmt.Errorf("partition: shape %+v does not tile %d columns", shape, cols)
	}
	if freq != nil && len(freq) != rows {
		return fmt.Errorf("partition: freq len %d != rows %d", len(freq), rows)
	}
	return nil
}

// partCapacityRows returns the maximum rows one partition may hold given
// the per-slice MRAM budget after reserving cacheBytes for cache storage.
func partCapacityRows(rows, cols int, shape Shape, cfg upmem.HWConfig, cacheBytes int64) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	avail := cfg.MRAMBytes - cacheBytes
	rowBytes := int64(shape.Nc) * 4
	capRows := int(avail / rowBytes)
	if int64(capRows)*int64(shape.Nc) > MaxTileElems {
		capRows = MaxTileElems / shape.Nc
	}
	need := (rows + shape.Parts - 1) / shape.Parts
	if capRows < need {
		return 0, fmt.Errorf("partition: capacity %d rows/partition cannot hold %d rows in %d partitions",
			capRows, rows, shape.Parts)
	}
	return capRows, nil
}

// packRows performs the greedy frequency bin-packing shared by NonUniform
// and CacheAware phase 2: unassigned rows with non-zero frequency are
// placed in descending frequency order on the least-loaded partition with
// spare capacity; zero-frequency rows then equalize row counts.
func packRows(p *Plan, freq []int64, capRows int, assigned []bool) {
	rowsUsed := make([]int, p.Shape.Parts)
	if assigned != nil {
		for r, a := range assigned {
			if a {
				rowsUsed[p.RowPart[r]]++
			}
		}
	}
	// Collect and sort the non-zero-frequency unassigned rows; the
	// zero-frequency tail (usually the overwhelming majority at paper
	// scale) skips the sort entirely.
	var hotRows []int32
	for r := range freq {
		if assigned != nil && assigned[r] {
			continue
		}
		if freq[r] > 0 {
			hotRows = append(hotRows, int32(r))
		}
	}
	sort.Slice(hotRows, func(i, j int) bool {
		if freq[hotRows[i]] != freq[hotRows[j]] {
			return freq[hotRows[i]] > freq[hotRows[j]]
		}
		return hotRows[i] < hotRows[j]
	})
	pickLeastLoaded := func() int {
		best := -1
		for part := 0; part < p.Shape.Parts; part++ {
			if rowsUsed[part] >= capRows {
				continue
			}
			if best == -1 || p.PartLoad[part] < p.PartLoad[best] {
				best = part
			}
		}
		if best == -1 {
			// capRows was validated to fit all rows; exhausting every
			// bin indicates an internal accounting bug.
			panic("partition: all bins full during packing")
		}
		return best
	}
	for _, r := range hotRows {
		part := pickLeastLoaded()
		p.RowPart[r] = int32(part)
		rowsUsed[part]++
		p.PartLoad[part] += freq[r]
	}
	// Zero-frequency rows: fill toward equal row counts; they carry no
	// load, so only capacity matters.
	for r := range freq {
		if (assigned != nil && assigned[r]) || freq[r] > 0 {
			continue
		}
		best := -1
		for q := 0; q < p.Shape.Parts; q++ {
			if rowsUsed[q] >= capRows {
				continue
			}
			if best == -1 || rowsUsed[q] < rowsUsed[best] {
				best = q
			}
		}
		if best == -1 {
			panic("partition: all bins full during zero-frequency fill")
		}
		p.RowPart[r] = int32(best)
		rowsUsed[best]++
	}
}
