package partition

import (
	"testing"
	"testing/quick"

	"updlrm/internal/grace"
	"updlrm/internal/upmem"
)

var hw = upmem.DefaultConfig()

func TestShapesEnumeration(t *testing.T) {
	// 32 columns, 32 DPUs: Nc in {2,4,8,16} -> slices {16,8,4,2} all
	// divide 32 -> parts {2,4,8,16}.
	shapes, err := Shapes(10_000, 32, 32, hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 4 {
		t.Fatalf("got %d shapes: %+v", len(shapes), shapes)
	}
	for _, s := range shapes {
		if s.DPUs() != 32 {
			t.Fatalf("shape %+v uses %d DPUs", s, s.DPUs())
		}
		if s.Nc*s.Slices != 32 {
			t.Fatalf("shape %+v does not tile 32 cols", s)
		}
	}
}

func TestShapesRespectMRAM(t *testing.T) {
	// Constraint (2): N_r*N_c = R*C/N_dpu. 60M x 32 on 32 DPUs puts 60M
	// elements on every DPU regardless of N_c — infeasible.
	if _, err := Shapes(60_000_000, 32, 32, hw); err == nil {
		t.Fatalf("oversized table accepted")
	}
	// The same table on 256 DPUs carries 7.5M elements per tile: fine.
	shapes, err := Shapes(60_000_000, 32, 256, hw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shapes {
		nr := (60_000_000 + s.Parts - 1) / s.Parts
		if int64(nr)*int64(s.Nc) > MaxTileElems {
			t.Fatalf("shape %+v violates tile cap", s)
		}
	}
}

func TestShapesErrors(t *testing.T) {
	if _, err := Shapes(0, 32, 32, hw); err == nil {
		t.Fatalf("zero rows accepted")
	}
	if _, err := Shapes(10, 32, 0, hw); err == nil {
		t.Fatalf("zero DPUs accepted")
	}
	// 3 columns can't be tiled by any power-of-two Nc >= 2.
	if _, err := Shapes(10, 3, 4, hw); err == nil {
		t.Fatalf("untileable column count accepted")
	}
}

func TestShapeDPUAt(t *testing.T) {
	s := Shape{Nc: 8, Slices: 4, Parts: 8}
	if s.DPUAt(0, 0) != 0 || s.DPUAt(1, 0) != 4 || s.DPUAt(1, 3) != 7 {
		t.Fatalf("DPUAt mapping wrong")
	}
}

func TestEstimateShapeTradeoffs(t *testing.T) {
	// §3.1/§4.2: larger Nc -> higher DPU-CPU time, lower CPU-DPU and
	// lookup time.
	w := Workload{BatchSize: 64, AvgReduction: 200}
	shapes, err := Shapes(2_000_000, 32, 32, hw)
	if err != nil {
		t.Fatal(err)
	}
	var byNc = map[int]Estimate{}
	for _, s := range shapes {
		byNc[s.Nc] = EstimateShape(s, w, hw)
	}
	if byNc[8].DPUToCPUNs <= byNc[2].DPUToCPUNs {
		t.Fatalf("DPU->CPU should grow with Nc: Nc8=%v Nc2=%v", byNc[8].DPUToCPUNs, byNc[2].DPUToCPUNs)
	}
	if byNc[8].CPUToDPUNs >= byNc[2].CPUToDPUNs {
		t.Fatalf("CPU->DPU should shrink with Nc: Nc8=%v Nc2=%v", byNc[8].CPUToDPUNs, byNc[2].CPUToDPUNs)
	}
	if byNc[8].LookupNs >= byNc[2].LookupNs {
		t.Fatalf("lookup should shrink with Nc: Nc8=%v Nc2=%v", byNc[8].LookupNs, byNc[2].LookupNs)
	}
}

func TestOptimalShapePicksMinimum(t *testing.T) {
	w := Workload{BatchSize: 64, AvgReduction: 100}
	best, bestEst, err := OptimalShape(2_000_000, 32, 32, w, hw)
	if err != nil {
		t.Fatal(err)
	}
	shapes, _ := Shapes(2_000_000, 32, 32, hw)
	for _, s := range shapes {
		if est := EstimateShape(s, w, hw); est.TotalNs() < bestEst.TotalNs() {
			t.Fatalf("shape %+v (%.0f) beats chosen %+v (%.0f)", s, est.TotalNs(), best, bestEst.TotalNs())
		}
	}
	if _, _, err := OptimalShape(100, 32, 32, Workload{}, hw); err == nil {
		t.Fatalf("zero workload accepted")
	}
}

func TestShapeWithNc(t *testing.T) {
	s, err := ShapeWithNc(1000, 32, 32, 8, hw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nc != 8 || s.Slices != 4 || s.Parts != 8 {
		t.Fatalf("ShapeWithNc = %+v", s)
	}
	if _, err := ShapeWithNc(1000, 32, 32, 6, hw); err == nil {
		t.Fatalf("invalid Nc accepted")
	}
}

// skewedFreq returns a frequency profile where low rows are very hot.
func skewedFreq(rows int) []int64 {
	freq := make([]int64, rows)
	for r := 0; r < rows; r++ {
		freq[r] = int64(rows/(r+1)) - 1
	}
	return freq
}

func TestUniformPlan(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	p, err := Uniform(1000, 32, shape, freq)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := p.RowsPerPart()
	for part, c := range counts {
		if c != 125 {
			t.Fatalf("partition %d has %d rows, want 125", part, c)
		}
	}
	// Uniform on a skewed profile is badly imbalanced.
	if p.LoadImbalance() < 3 {
		t.Fatalf("uniform imbalance = %v, expected badly imbalanced", p.LoadImbalance())
	}
	// Contiguity: partitions are monotone in row id.
	for r := 1; r < 1000; r++ {
		if p.RowPart[r] < p.RowPart[r-1] {
			t.Fatalf("uniform partitions not contiguous at row %d", r)
		}
	}
}

func TestNonUniformBalances(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	p, err := NonUniform(1000, 32, shape, freq, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Greedy bound: max load <= mean + heaviest single row. The skewed
	// profile's hottest row (freq 999) exceeds the mean bin load, so
	// perfect balance is impossible; check the bound plus a big win over
	// uniform.
	var total, maxW int64
	for _, f := range freq {
		total += f
		if f > maxW {
			maxW = f
		}
	}
	mean := float64(total) / 8
	if got := p.LoadImbalance(); got > (mean+float64(maxW))/mean {
		t.Fatalf("non-uniform imbalance = %v violates greedy bound", got)
	}
	u, err := Uniform(1000, 32, Shape{Nc: 8, Slices: 4, Parts: 8}, freq)
	if err != nil {
		t.Fatal(err)
	}
	if p.LoadImbalance() >= u.LoadImbalance() {
		t.Fatalf("non-uniform (%v) should beat uniform (%v)", p.LoadImbalance(), u.LoadImbalance())
	}
	// Every row assigned exactly once is implied by len+range checks in
	// Validate; verify loads match freq sums.
	loads := make([]int64, 8)
	for r, part := range p.RowPart {
		loads[part] += freq[r]
	}
	for part := range loads {
		if loads[part] != p.PartLoad[part] {
			t.Fatalf("partition %d load %d != recorded %d", part, loads[part], p.PartLoad[part])
		}
	}
}

func TestNonUniformRequiresFreq(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	if _, err := NonUniform(1000, 32, shape, nil, hw); err == nil {
		t.Fatalf("nil freq accepted")
	}
}

func TestCapacityRejectsOversizedTable(t *testing.T) {
	tiny := hw
	tiny.MRAMBytes = 1024 // 1 KB MRAM: 32 rows of Nc=8
	shape := Shape{Nc: 8, Slices: 4, Parts: 2}
	freq := make([]int64, 1000)
	if _, err := NonUniform(1000, 32, shape, freq, tiny); err == nil {
		t.Fatalf("oversized table accepted")
	}
}

func mineLists(freq []int64) []grace.List {
	// Hand-made lists over hot rows.
	return []grace.List{
		{Items: []int32{0, 1, 2}, Benefit: freq[0] / 2},
		{Items: []int32{3, 4}, Benefit: freq[3] / 2},
		{Items: []int32{5, 6, 7}, Benefit: freq[5] / 2},
	}
}

func TestCacheAwarePlan(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	lists := mineLists(freq)
	p, err := CacheAware(1000, 32, shape, freq, lists, hw, CacheAwareConfig{CapacityFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.CachedLists() != 3 {
		t.Fatalf("CachedLists = %d, want 3", p.CachedLists())
	}
	// Items of each admitted list share their list's partition.
	for g, part := range p.ListPart {
		for _, item := range p.Lists[g].Items {
			if p.RowPart[item] != part {
				t.Fatalf("list %d item %d on partition %d, want %d", g, item, p.RowPart[item], part)
			}
		}
	}
	// Greedy bound with composite units: a cache list moves as one unit
	// of weight (sum of member freqs - benefit), so the max load cannot
	// exceed the mean by more than the heaviest unit.
	var total, maxUnit, maxLoad int64
	for _, l := range p.PartLoad {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	for r, f := range freq {
		inList := false
		for _, l := range lists {
			for _, item := range l.Items {
				if int(item) == r {
					inList = true
				}
			}
		}
		if !inList && f > maxUnit {
			maxUnit = f
		}
	}
	for _, l := range lists {
		var w int64
		for _, item := range l.Items {
			w += freq[item]
		}
		w -= l.Benefit
		if w > maxUnit {
			maxUnit = w
		}
	}
	mean := total / int64(shape.Parts)
	if maxLoad > mean+maxUnit {
		t.Fatalf("cache-aware max load %d > mean %d + max unit %d", maxLoad, mean, maxUnit)
	}
}

func TestCacheAwareZeroCapacityDegeneratesToNonUniform(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	lists := mineLists(freq)
	p, err := CacheAware(1000, 32, shape, freq, lists, hw, CacheAwareConfig{CapacityFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.CachedLists() != 0 {
		t.Fatalf("zero capacity cached %d lists", p.CachedLists())
	}
	nu, err := NonUniform(1000, 32, shape, freq, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Same balancing quality (assignments may differ).
	if p.LoadImbalance() > nu.LoadImbalance()*1.1 {
		t.Fatalf("degenerate CA imbalance %v much worse than NU %v", p.LoadImbalance(), nu.LoadImbalance())
	}
}

func TestCacheAwarePartialCapacity(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 2}
	freq := skewedFreq(1000)
	lists := mineLists(freq)
	full, err := CacheAware(1000, 32, shape, freq, lists, hw, CacheAwareConfig{CapacityFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny fraction, the per-part budget shrinks below some list
	// sizes, so fewer lists are admitted.
	partial, err := CacheAware(1000, 32, shape, freq, lists, hw, CacheAwareConfig{CapacityFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if partial.CachedLists() > full.CachedLists() {
		t.Fatalf("partial capacity cached more lists (%d) than full (%d)",
			partial.CachedLists(), full.CachedLists())
	}
	for part, used := range partial.CacheUsedPerPart {
		if used > partial.CacheBudgetPerPart {
			t.Fatalf("partition %d cache overflow", part)
		}
	}
}

func TestCacheAwareRejectsBadInput(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	if _, err := CacheAware(1000, 32, shape, freq, nil, hw, CacheAwareConfig{CapacityFrac: 2}); err == nil {
		t.Fatalf("CapacityFrac > 1 accepted")
	}
	bad := []grace.List{{Items: []int32{5000}, Benefit: 1}}
	if _, err := CacheAware(1000, 32, shape, freq, bad, hw, CacheAwareConfig{CapacityFrac: 1}); err == nil {
		t.Fatalf("out-of-range list item accepted")
	}
	dup := []grace.List{
		{Items: []int32{1, 2}, Benefit: 5},
		{Items: []int32{2, 3}, Benefit: 5},
	}
	if _, err := CacheAware(1000, 32, shape, freq, dup, hw, CacheAwareConfig{CapacityFrac: 1}); err == nil {
		t.Fatalf("overlapping lists accepted")
	}
}

func TestBuildDispatch(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(1000)
	for _, m := range []Method{MethodUniform, MethodNonUniform, MethodCacheAware} {
		p, err := Build(m, 1000, 32, shape, freq, nil, hw, CacheAwareConfig{CapacityFrac: 1})
		if err != nil {
			t.Fatalf("Build(%v): %v", m, err)
		}
		if p.Method != m {
			t.Fatalf("Build(%v) produced %v", m, p.Method)
		}
	}
	if _, err := Build(Method(9), 1000, 32, shape, freq, nil, hw, CacheAwareConfig{}); err == nil {
		t.Fatalf("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if MethodUniform.String() != "U" || MethodNonUniform.String() != "NU" || MethodCacheAware.String() != "CA" {
		t.Fatalf("method names wrong")
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 8}
	freq := skewedFreq(100)
	p, err := NonUniform(100, 32, shape, freq, hw)
	if err != nil {
		t.Fatal(err)
	}
	p.RowPart[5] = 99
	if err := p.Validate(); err == nil {
		t.Fatalf("out-of-range partition accepted")
	}
	p.RowPart[5] = 0
	p.RowPart = p.RowPart[:50]
	if err := p.Validate(); err == nil {
		t.Fatalf("truncated RowPart accepted")
	}
}

// Property: the greedy packer's max load never exceeds mean + max item
// weight (standard greedy bound) and every plan validates.
func TestNonUniformGreedyBoundQuick(t *testing.T) {
	shape := Shape{Nc: 8, Slices: 4, Parts: 4}
	f := func(raw []uint16) bool {
		rows := len(raw)
		if rows < 8 {
			return true
		}
		freq := make([]int64, rows)
		var total, maxW int64
		for i, v := range raw {
			freq[i] = int64(v)
			total += int64(v)
			if int64(v) > maxW {
				maxW = int64(v)
			}
		}
		p, err := NonUniform(rows, 32, shape, freq, hw)
		if err != nil {
			// Capacity shortfalls are legitimate for tiny row counts.
			return rows/shape.Parts == 0
		}
		if err := p.Validate(); err != nil {
			return false
		}
		var maxLoad int64
		for _, l := range p.PartLoad {
			if l > maxLoad {
				maxLoad = l
			}
		}
		mean := total / int64(shape.Parts)
		return maxLoad <= mean+maxW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cache-aware plans co-locate admitted lists and respect
// budgets for random capacity fractions.
func TestCacheAwareInvariantsQuick(t *testing.T) {
	shape := Shape{Nc: 4, Slices: 8, Parts: 4}
	f := func(fracRaw uint8, seed uint8) bool {
		frac := float64(fracRaw%101) / 100
		rows := 600
		freq := make([]int64, rows)
		for r := range freq {
			freq[r] = int64((r*int(seed+1))%97) + 1
		}
		lists := []grace.List{
			{Items: []int32{0, 10, 20}, Benefit: 40},
			{Items: []int32{30, 40}, Benefit: 25},
			{Items: []int32{50, 60, 70, 80}, Benefit: 60},
		}
		p, err := CacheAware(rows, 32, shape, freq, lists, hw, CacheAwareConfig{CapacityFrac: frac})
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
