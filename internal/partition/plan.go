package partition

import (
	"fmt"

	"updlrm/internal/grace"
)

// Method identifies a partitioning strategy.
type Method int

// The three strategies of §3.
const (
	// MethodUniform is §3.1: equal contiguous row blocks.
	MethodUniform Method = iota
	// MethodNonUniform is §3.2: greedy frequency bin-packing.
	MethodNonUniform
	// MethodCacheAware is §3.3 / Algorithm 1: frequency bin-packing that
	// co-locates GRACE cache lists and balances EMT+cache accesses.
	MethodCacheAware
)

// String returns the paper's abbreviation for the method (U / NU / CA).
func (m Method) String() string {
	switch m {
	case MethodUniform:
		return "U"
	case MethodNonUniform:
		return "NU"
	case MethodCacheAware:
		return "CA"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Plan is the partitioning outcome for one EMT: every row is assigned to
// a row partition; a cache-aware plan additionally places mined cache
// lists.
type Plan struct {
	// Method records which strategy produced the plan.
	Method Method
	// Rows and Cols are the table dimensions.
	Rows, Cols int
	// Shape is the tile geometry used.
	Shape Shape
	// RowPart[r] is the row partition owning row r.
	RowPart []int32
	// Lists are the cache lists considered (cache-aware plans only).
	Lists []grace.List
	// ListPart[g] is the partition storing list g's subset sums, or -1
	// when the list was not admitted (insufficient cache budget).
	ListPart []int32
	// CacheBudgetPerPart is the per-partition, per-slice cache region in
	// bytes.
	CacheBudgetPerPart int64
	// CacheUsedPerPart is the cache storage actually consumed per
	// partition (per slice).
	CacheUsedPerPart []int64
	// PartLoad is the planner's expected accesses per partition: EMT
	// reads plus cache reads (freq sums minus cache benefits).
	PartLoad []int64
}

// Validate checks the structural invariants every plan must satisfy:
// complete row assignment, partition ids in range, cached lists
// co-located with their items, and cache budgets respected.
func (p *Plan) Validate() error {
	if p.Rows <= 0 || p.Cols <= 0 {
		return fmt.Errorf("partition: plan table %dx%d", p.Rows, p.Cols)
	}
	if len(p.RowPart) != p.Rows {
		return fmt.Errorf("partition: RowPart len %d != rows %d", len(p.RowPart), p.Rows)
	}
	if p.Shape.Parts <= 0 || p.Shape.Slices <= 0 {
		return fmt.Errorf("partition: shape %+v", p.Shape)
	}
	if p.Cols%p.Shape.Nc != 0 || p.Shape.Slices != p.Cols/p.Shape.Nc {
		return fmt.Errorf("partition: shape %+v inconsistent with %d cols", p.Shape, p.Cols)
	}
	for r, part := range p.RowPart {
		if part < 0 || int(part) >= p.Shape.Parts {
			return fmt.Errorf("partition: row %d assigned to partition %d of %d", r, part, p.Shape.Parts)
		}
	}
	if len(p.ListPart) != len(p.Lists) {
		return fmt.Errorf("partition: ListPart len %d != Lists len %d", len(p.ListPart), len(p.Lists))
	}
	for g, part := range p.ListPart {
		if part < -1 || int(part) >= p.Shape.Parts {
			return fmt.Errorf("partition: list %d assigned to partition %d", g, part)
		}
		if part >= 0 {
			// Cached list items must live in the list's partition so one
			// MRAM read serves the whole subset.
			for _, item := range p.Lists[g].Items {
				if p.RowPart[item] != part {
					return fmt.Errorf("partition: list %d on partition %d but item %d on %d",
						g, part, item, p.RowPart[item])
				}
			}
		}
	}
	if len(p.CacheUsedPerPart) > 0 {
		for part, used := range p.CacheUsedPerPart {
			if used > p.CacheBudgetPerPart {
				return fmt.Errorf("partition: partition %d cache use %d > budget %d",
					part, used, p.CacheBudgetPerPart)
			}
		}
	}
	return nil
}

// RowsPerPart returns how many rows each partition stores.
func (p *Plan) RowsPerPart() []int {
	counts := make([]int, p.Shape.Parts)
	for _, part := range p.RowPart {
		counts[part]++
	}
	return counts
}

// LoadImbalance returns max(PartLoad)/mean(PartLoad); 1.0 is perfect
// balance. Plans without load data return 1.
func (p *Plan) LoadImbalance() float64 {
	if len(p.PartLoad) == 0 {
		return 1
	}
	var sum, max int64
	for _, l := range p.PartLoad {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(p.PartLoad))
	return float64(max) / mean
}

// CachedLists returns how many lists were admitted to cache storage.
func (p *Plan) CachedLists() int {
	n := 0
	for _, part := range p.ListPart {
		if part >= 0 {
			n++
		}
	}
	return n
}

// Assignment builds the runtime cache view for cover planning: only
// admitted lists participate.
func (p *Plan) Assignment() *grace.Assignment {
	cached := make([]bool, len(p.Lists))
	for g, part := range p.ListPart {
		cached[g] = part >= 0
	}
	return grace.NewAssignment(p.Lists, cached)
}
