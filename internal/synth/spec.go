package synth

import (
	"fmt"
	"math"
	"sort"

	"updlrm/internal/tensor"
	"updlrm/internal/trace"
)

// Spec describes a synthetic workload. The zero value is not usable; start
// from a preset or fill all fields.
type Spec struct {
	// Name labels the workload in reports.
	Name string
	// NumItems is the number of rows per embedding table (Table 1
	// "#Items").
	NumItems int
	// Tables is how many EMTs each sample addresses. The paper duplicates
	// each dataset into 8 EMTs (§4.1).
	Tables int
	// AvgReduction is the target mean multi-hot degree (Table 1
	// "Avg.Reduction").
	AvgReduction float64
	// ReductionStdFrac is the coefficient of variation of the per-sample
	// degree (degree ~ clamped Normal(avg, frac*avg)).
	ReductionStdFrac float64
	// ZipfExponent controls popularity skew; 0 means uniform access.
	ZipfExponent float64
	// MotifCount is the number of co-occurrence motifs (groups of hot
	// items that appear together); 0 disables co-occurrence structure.
	MotifCount int
	// MotifMinSize and MotifMaxSize bound motif group sizes.
	MotifMinSize, MotifMaxSize int
	// MotifProb is the probability that a sample's bag embeds one motif.
	MotifProb float64
	// DenseDim is the dense-feature width.
	DenseDim int
	// Seed makes generation reproducible.
	Seed uint64
	// WriteRatio is the workload's online-update intensity: row deltas
	// per embedding lookup (0 = read-only). It parameterizes write-aware
	// partitioning and sizes the update stream Updates draws; it does
	// not perturb Generate — a write preset sharing a read preset's
	// seed produces a bit-identical read trace.
	WriteRatio float64
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch {
	case s.NumItems <= 0:
		return fmt.Errorf("synth: NumItems = %d", s.NumItems)
	case s.Tables <= 0:
		return fmt.Errorf("synth: Tables = %d", s.Tables)
	case s.AvgReduction < 1:
		return fmt.Errorf("synth: AvgReduction = %v (< 1)", s.AvgReduction)
	case s.ReductionStdFrac < 0:
		return fmt.Errorf("synth: ReductionStdFrac = %v", s.ReductionStdFrac)
	case s.ZipfExponent < 0:
		return fmt.Errorf("synth: ZipfExponent = %v", s.ZipfExponent)
	case s.MotifCount < 0:
		return fmt.Errorf("synth: MotifCount = %d", s.MotifCount)
	case s.MotifCount > 0 && (s.MotifMinSize < 2 || s.MotifMaxSize < s.MotifMinSize):
		return fmt.Errorf("synth: motif sizes [%d,%d]", s.MotifMinSize, s.MotifMaxSize)
	case s.MotifProb < 0 || s.MotifProb > 1:
		return fmt.Errorf("synth: MotifProb = %v", s.MotifProb)
	case s.DenseDim < 0:
		return fmt.Errorf("synth: DenseDim = %d", s.DenseDim)
	case s.WriteRatio < 0 || s.WriteRatio > 1:
		return fmt.Errorf("synth: WriteRatio = %v (want [0,1])", s.WriteRatio)
	}
	return nil
}

// RowUpdate identifies one embedding row receiving an online delta.
type RowUpdate struct {
	Table int
	Row   int32
}

// Updates draws n row updates from the same per-table popularity
// distribution as the read stream — online training touches the rows
// inference reads, hot rows most — but from a write-specific seed, so
// the update stream is decorrelated from (and never perturbs) the read
// trace. Same spec + n always yields the identical stream.
func (s Spec) Updates(n int) ([]RowUpdate, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("synth: updates n = %d", n)
	}
	const writeSalt = 0x77726974 // decorrelates the write stream's draws
	zipfs := make([]*Zipf, s.Tables)
	for t := 0; t < s.Tables; t++ {
		zipfs[t] = NewZipf(s.NumItems, s.ZipfExponent, tensor.NewRNG(s.Seed^writeSalt+uint64(t)*0x9e3779b9+1))
	}
	pick := tensor.NewRNG(s.Seed ^ writeSalt ^ 0x5bd1e995)
	ups := make([]RowUpdate, n)
	for i := range ups {
		t := pick.Intn(s.Tables)
		ups[i] = RowUpdate{Table: t, Row: int32(zipfs[t].Draw())}
	}
	return ups, nil
}

// motifs are groups of items that tend to co-occur in one sample; they are
// drawn from the hot end of the popularity distribution so a GRACE-style
// cache can profit from them.
func buildMotifs(s Spec, rng *tensor.RNG) [][]int32 {
	if s.MotifCount == 0 {
		return nil
	}
	// Hot end: motif members are drawn from the top ~1% of items (at
	// least 64), mirroring how popular items cluster in real traces.
	hotSpan := s.NumItems / 100
	if hotSpan < 64 {
		hotSpan = 64
	}
	if hotSpan > s.NumItems {
		hotSpan = s.NumItems
	}
	motifs := make([][]int32, 0, s.MotifCount)
	for m := 0; m < s.MotifCount; m++ {
		size := s.MotifMinSize
		if s.MotifMaxSize > s.MotifMinSize {
			size += rng.Intn(s.MotifMaxSize - s.MotifMinSize + 1)
		}
		seen := make(map[int32]bool, size)
		group := make([]int32, 0, size)
		for len(group) < size {
			v := int32(rng.Intn(hotSpan))
			if !seen[v] {
				seen[v] = true
				group = append(group, v)
			}
		}
		sort.Slice(group, func(a, b int) bool { return group[a] < group[b] })
		motifs = append(motifs, group)
	}
	return motifs
}

// Generate produces numSamples requests. Same spec + numSamples always
// yields the identical trace.
func (s Spec) Generate(numSamples int) (*trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if numSamples < 0 {
		return nil, fmt.Errorf("synth: numSamples = %d", numSamples)
	}
	root := tensor.NewRNG(s.Seed ^ 0x5bd1e995)
	motifRNG := root.Split()
	denseRNG := root.Split()
	degreeRNG := root.Split()

	motifs := buildMotifs(s, motifRNG)

	tr := &trace.Trace{
		NumTables:    s.Tables,
		RowsPerTable: make([]int, s.Tables),
		DenseDim:     s.DenseDim,
		Samples:      make([]trace.Sample, numSamples),
	}
	for t := range tr.RowsPerTable {
		tr.RowsPerTable[t] = s.NumItems
	}

	// Per-table independent samplers: the paper duplicates the dataset
	// into 8 EMTs; independent draws from the same distribution keep each
	// table statistically identical without being bit-identical.
	zipfs := make([]*Zipf, s.Tables)
	motifPick := make([]*tensor.RNG, s.Tables)
	for t := 0; t < s.Tables; t++ {
		zipfs[t] = NewZipf(s.NumItems, s.ZipfExponent, tensor.NewRNG(s.Seed+uint64(t)*0x9e3779b9+1))
		motifPick[t] = tensor.NewRNG(s.Seed ^ (uint64(t)+0xabcd)*0x2545f4914f6cdd1d)
	}

	for i := 0; i < numSamples; i++ {
		sample := trace.Sample{
			Dense:  make([]float32, s.DenseDim),
			Sparse: make([][]int32, s.Tables),
		}
		for d := range sample.Dense {
			sample.Dense[d] = denseRNG.Float32()
		}
		for t := 0; t < s.Tables; t++ {
			degree := s.drawDegree(degreeRNG)
			sample.Sparse[t] = s.drawBag(degree, zipfs[t], motifPick[t], motifs)
		}
		tr.Samples[i] = sample
	}
	return tr, nil
}

// drawDegree samples the multi-hot degree: Normal(avg, frac*avg) clamped
// to [1, max(4*avg, 1)] and never above NumItems.
func (s Spec) drawDegree(rng *tensor.RNG) int {
	d := s.AvgReduction
	if s.ReductionStdFrac > 0 {
		d += rng.Norm() * s.ReductionStdFrac * s.AvgReduction
	}
	deg := int(math.Round(d))
	if deg < 1 {
		deg = 1
	}
	if hi := int(4 * s.AvgReduction); deg > hi && hi >= 1 {
		deg = hi
	}
	if deg > s.NumItems {
		deg = s.NumItems
	}
	return deg
}

// drawBag builds one multi-hot index set of the requested degree,
// optionally seeding it with a motif, then filling with Zipf draws.
// Indices within a bag are unique (set semantics).
func (s Spec) drawBag(degree int, z *Zipf, rng *tensor.RNG, motifs [][]int32) []int32 {
	bag := make([]int32, 0, degree)
	seen := make(map[int32]bool, degree)
	if len(motifs) > 0 && rng.Float64() < s.MotifProb {
		m := motifs[rng.Intn(len(motifs))]
		for _, v := range m {
			if len(bag) == degree {
				break
			}
			if !seen[v] {
				seen[v] = true
				bag = append(bag, v)
			}
		}
	}
	// Fill the rest with Zipf draws; cap the retry loop so adversarial
	// configs (degree close to NumItems with heavy skew) still terminate.
	misses := 0
	for len(bag) < degree {
		v := int32(z.Draw())
		if !seen[v] {
			seen[v] = true
			bag = append(bag, v)
			misses = 0
			continue
		}
		misses++
		if misses > 64 {
			// Fall back to a linear probe from a uniform start.
			start := rng.Intn(s.NumItems)
			for off := 0; off < s.NumItems && len(bag) < degree; off++ {
				u := int32((start + off) % s.NumItems)
				if !seen[u] {
					seen[u] = true
					bag = append(bag, u)
				}
			}
			break
		}
	}
	return bag
}
