package synth

import (
	"math"
	"testing"

	"updlrm/internal/tensor"
	"updlrm/internal/trace"
)

func TestZipfUniformWhenExponentZero(t *testing.T) {
	z := NewZipf(10, 0, tensor.NewRNG(1))
	counts := make([]int, 10)
	n := 20000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("uniform bucket %d frac %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfSkewAndSupport(t *testing.T) {
	z := NewZipf(1000, 1.1, tensor.NewRNG(2))
	counts := make([]int, 1000)
	n := 50000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 0 || v >= 1000 {
			t.Fatalf("draw %d out of support", v)
		}
		counts[v]++
	}
	// Rank-0 should dominate, and mass should decay with rank.
	if counts[0] < counts[10] {
		t.Fatalf("rank 0 (%d) should beat rank 10 (%d)", counts[0], counts[10])
	}
	var head, tail int
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 990; i < 1000; i++ {
		tail += counts[i]
	}
	if head < tail*10 {
		t.Fatalf("head %d not >> tail %d for s=1.1", head, tail)
	}
}

// The empirical rank-frequency curve should roughly follow (r+1)^-s:
// compare the ratio of observed frequencies at ranks 1 and 8 with theory.
func TestZipfFollowsPowerLaw(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.3} {
		z := NewZipf(10000, s, tensor.NewRNG(3))
		counts := make([]int, 10000)
		n := 200000
		for i := 0; i < n; i++ {
			counts[z.Draw()]++
		}
		got := float64(counts[0]) / float64(counts[7])
		want := math.Pow(8.0/1.0, s)
		if got < want*0.7 || got > want*1.4 {
			t.Fatalf("s=%v: rank1/rank8 ratio %v, theory %v", s, got, want)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(100, 1.0, tensor.NewRNG(7))
	b := NewZipf(100, 1.0, tensor.NewRNG(7))
	for i := 0; i < 1000; i++ {
		if a.Draw() != b.Draw() {
			t.Fatalf("same-seed Zipf streams diverged at %d", i)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1, tensor.NewRNG(1)) },
		func() { NewZipf(10, -1, tensor.NewRNG(1)) },
		func() { NewZipf(10, math.NaN(), tensor.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{NumItems: 100, Tables: 2, AvgReduction: 5, DenseDim: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bads := []Spec{
		{NumItems: 0, Tables: 1, AvgReduction: 5},
		{NumItems: 10, Tables: 0, AvgReduction: 5},
		{NumItems: 10, Tables: 1, AvgReduction: 0.5},
		{NumItems: 10, Tables: 1, AvgReduction: 5, ZipfExponent: -1},
		{NumItems: 10, Tables: 1, AvgReduction: 5, MotifCount: 3, MotifMinSize: 1, MotifMaxSize: 2},
		{NumItems: 10, Tables: 1, AvgReduction: 5, MotifProb: 1.5},
		{NumItems: 10, Tables: 1, AvgReduction: 5, DenseDim: -1},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, b)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	spec := Spec{
		Name: "t", NumItems: 500, Tables: 3, AvgReduction: 8,
		ReductionStdFrac: 0.2, ZipfExponent: 0.9,
		MotifCount: 8, MotifMinSize: 2, MotifMaxSize: 4, MotifProb: 0.5,
		DenseDim: 5, Seed: 77,
	}
	tr, err := spec.Generate(200)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Samples) != 200 || tr.NumTables != 3 || tr.DenseDim != 5 {
		t.Fatalf("trace shape wrong: %d samples, %d tables", len(tr.Samples), tr.NumTables)
	}
	// Average reduction should land near the target.
	avg := tr.AvgReduction()
	if avg < 6 || avg > 10 {
		t.Fatalf("AvgReduction = %v, want ~8", avg)
	}
	// Bags must not contain duplicates (set semantics).
	for si, s := range tr.Samples {
		for ti, bag := range s.Sparse {
			seen := map[int32]bool{}
			for _, v := range bag {
				if seen[v] {
					t.Fatalf("sample %d table %d has duplicate index %d", si, ti, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{NumItems: 200, Tables: 2, AvgReduction: 4, ZipfExponent: 1, DenseDim: 2, Seed: 5}
	a, err := spec.Generate(50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		for ti := range a.Samples[i].Sparse {
			av, bv := a.Samples[i].Sparse[ti], b.Samples[i].Sparse[ti]
			if len(av) != len(bv) {
				t.Fatalf("sample %d table %d degree differs", i, ti)
			}
			for k := range av {
				if av[k] != bv[k] {
					t.Fatalf("sample %d table %d index %d differs", i, ti, k)
				}
			}
		}
	}
}

func TestGenerateHighDegreeTerminates(t *testing.T) {
	// Degree near NumItems with heavy skew exercises the fallback probe.
	spec := Spec{NumItems: 40, Tables: 1, AvgReduction: 35, ZipfExponent: 1.5, DenseDim: 1, Seed: 9}
	tr, err := spec.Generate(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		if len(s.Sparse[0]) == 0 || len(s.Sparse[0]) > 40 {
			t.Fatalf("bag size %d out of range", len(s.Sparse[0]))
		}
	}
}

func TestPresetsCatalogue(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatalf("unknown preset accepted")
	}
	if len(Table1Names()) != 6 {
		t.Fatalf("Table1Names = %v", Table1Names())
	}
	if len(Figure5Names()) != 3 {
		t.Fatalf("Figure5Names = %v", Figure5Names())
	}
}

func TestTable1PresetParameters(t *testing.T) {
	wantItems := map[string]int{
		PresetClo: 2_685_059, PresetHome: 1_301_225,
		PresetMeta1: 5_783_210, PresetMeta2: 5_999_981,
		PresetRead: 2_360_650, PresetRead2: 2_360_650,
	}
	wantRed := map[string]float64{
		PresetClo: 52.91, PresetHome: 67.56,
		PresetMeta1: 107.2, PresetMeta2: 188.6,
		PresetRead: 245.8, PresetRead2: 374.08,
	}
	for name, items := range wantItems {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumItems != items {
			t.Fatalf("%s NumItems = %d, want %d", name, s.NumItems, items)
		}
		if s.AvgReduction != wantRed[name] {
			t.Fatalf("%s AvgReduction = %v, want %v", name, s.AvgReduction, wantRed[name])
		}
		if s.Tables != 8 {
			t.Fatalf("%s Tables = %d, want 8", name, s.Tables)
		}
	}
}

func TestHotnessOf(t *testing.T) {
	if HotnessOf(PresetClo) != LowHot || HotnessOf(PresetHome) != LowHot {
		t.Fatalf("low-hot classification wrong")
	}
	if HotnessOf(PresetMeta1) != MediumHot || HotnessOf(PresetMeta2) != MediumHot {
		t.Fatalf("medium-hot classification wrong")
	}
	if HotnessOf(PresetRead) != HighHot || HotnessOf(PresetRead2) != HighHot {
		t.Fatalf("high-hot classification wrong")
	}
}

// The scaled Figure 5 presets must show heavy block skew, and the scaled
// clo preset must stay comparatively balanced — these are the qualitative
// facts Figures 5/9 depend on.
func TestPresetSkewShapes(t *testing.T) {
	movie, err := Preset(PresetMovieSkew)
	if err != nil {
		t.Fatal(err)
	}
	movieTr, err := Scaled(movie, 0.2, 0.3).Generate(300)
	if err != nil {
		t.Fatal(err)
	}
	movieHist := trace.BlockHistogram(movieTr.Frequency(0), 8)
	movieSkew := trace.SkewRatio(movieHist)
	if movieSkew < 20 {
		t.Fatalf("movie skew = %v, want heavily skewed (>20)", movieSkew)
	}

	clo, err := Preset(PresetClo)
	if err != nil {
		t.Fatal(err)
	}
	cloTr, err := Scaled(clo, 0.01, 0.3).Generate(300)
	if err != nil {
		t.Fatal(err)
	}
	cloHist := trace.BlockHistogram(cloTr.Frequency(0), 8)
	cloSkew := trace.SkewRatio(cloHist)
	if cloSkew > movieSkew/4 {
		t.Fatalf("clo skew %v not much flatter than movie %v", cloSkew, movieSkew)
	}
}

func TestBalancedSpec(t *testing.T) {
	s := Balanced(1000, 2, 50, 3)
	if err := s.Validate(); err != nil {
		t.Fatalf("Balanced invalid: %v", err)
	}
	tr, err := s.Generate(100)
	if err != nil {
		t.Fatal(err)
	}
	hist := trace.BlockHistogram(tr.Frequency(0), 8)
	if skew := trace.SkewRatio(hist); skew > 1.5 {
		t.Fatalf("balanced spec skew = %v, want ~1", skew)
	}
	avg := tr.AvgReduction()
	if avg < 45 || avg > 55 {
		t.Fatalf("balanced AvgReduction = %v, want ~50", avg)
	}
}

func TestScaled(t *testing.T) {
	s, err := Preset(PresetRead)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scaled(s, 0.001, 0.1)
	if sc.NumItems != int(float64(s.NumItems)*0.001) {
		t.Fatalf("Scaled items = %d", sc.NumItems)
	}
	if math.Abs(sc.AvgReduction-s.AvgReduction*0.1) > 1e-9 {
		t.Fatalf("Scaled reduction = %v", sc.AvgReduction)
	}
	// Floors apply.
	tiny := Scaled(s, 0, 0)
	if tiny.NumItems != 64 || tiny.AvgReduction != 1 {
		t.Fatalf("Scaled floors: %d items, %v red", tiny.NumItems, tiny.AvgReduction)
	}
}
