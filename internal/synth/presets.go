package synth

import (
	"fmt"
	"sort"
)

// Preset names for the six Table 1 workloads, in the paper's order.
const (
	PresetClo   = "clo"   // AmazonClothes  — low hot
	PresetHome  = "home"  // AmazonHome     — low hot
	PresetMeta1 = "meta1" // MetaFBGEMM1    — medium hot
	PresetMeta2 = "meta2" // MetaFBGEMM2    — medium hot
	PresetRead  = "read"  // GoodReads      — high hot
	PresetRead2 = "read2" // GoodReads2     — high hot
)

// Preset names for the three Figure 5 skew-study datasets.
const (
	PresetGoodreadsSkew = "goodreads"
	PresetMovieSkew     = "movie"
	PresetTwitchSkew    = "twitch"
)

// Preset names for the online-update study: each is its read
// counterpart (same seed, so the read trace is bit-identical) with a
// non-zero WriteRatio — UpDLRM's motivating scenario of training
// trickling row deltas into serving tables.
const (
	PresetWrite  = "write"  // GoodReads  + 0.25 deltas/lookup
	PresetWrite2 = "write2" // GoodReads2 + 0.40 deltas/lookup
)

// Hotness buckets the six Table 1 workloads the way §4.1 does.
type Hotness string

// Hotness levels.
const (
	LowHot    Hotness = "Low Hot"
	MediumHot Hotness = "Medium Hot"
	HighHot   Hotness = "High Hot"
)

// HotnessOf returns the paper's category for a Table 1 preset name.
func HotnessOf(name string) Hotness {
	switch name {
	case PresetClo, PresetHome:
		return LowHot
	case PresetMeta1, PresetMeta2:
		return MediumHot
	default:
		return HighHot
	}
}

// presets holds the full catalogue. Item counts and average reductions for
// the Table 1 entries are the paper's exact values. Zipf exponents and
// motif densities are chosen to reproduce the paper's qualitative skew
// claims: "clo" is near-balanced (§4.2 obs. 2: all partitioners tie on
// clo), the Goodreads/Movie/Twitch family shows up to ~340x block skew
// (Figure 5), and Movie's cache cuts ~40% of accesses (Figure 6).
var presets = map[string]Spec{
	PresetClo: {
		Name: PresetClo, NumItems: 2_685_059, Tables: 8,
		AvgReduction: 52.91, ReductionStdFrac: 0.2,
		ZipfExponent: 0.25, MotifCount: 32, MotifMinSize: 2, MotifMaxSize: 4, MotifProb: 0.08,
		DenseDim: 13, Seed: 0xc10,
	},
	PresetHome: {
		Name: PresetHome, NumItems: 1_301_225, Tables: 8,
		AvgReduction: 67.56, ReductionStdFrac: 0.2,
		ZipfExponent: 0.65, MotifCount: 64, MotifMinSize: 2, MotifMaxSize: 5, MotifProb: 0.25,
		DenseDim: 13, Seed: 0x803e,
	},
	PresetMeta1: {
		Name: PresetMeta1, NumItems: 5_783_210, Tables: 8,
		AvgReduction: 107.2, ReductionStdFrac: 0.25,
		ZipfExponent: 0.9, MotifCount: 128, MotifMinSize: 2, MotifMaxSize: 5, MotifProb: 0.4,
		DenseDim: 13, Seed: 0x3e7a1,
	},
	PresetMeta2: {
		Name: PresetMeta2, NumItems: 5_999_981, Tables: 8,
		AvgReduction: 188.6, ReductionStdFrac: 0.25,
		ZipfExponent: 0.95, MotifCount: 128, MotifMinSize: 2, MotifMaxSize: 6, MotifProb: 0.45,
		DenseDim: 13, Seed: 0x3e7a2,
	},
	PresetRead: {
		Name: PresetRead, NumItems: 2_360_650, Tables: 8,
		AvgReduction: 245.8, ReductionStdFrac: 0.3,
		ZipfExponent: 1.1, MotifCount: 192, MotifMinSize: 3, MotifMaxSize: 6, MotifProb: 0.6,
		DenseDim: 13, Seed: 0x9ead,
	},
	PresetRead2: {
		Name: PresetRead2, NumItems: 2_360_650, Tables: 8,
		AvgReduction: 374.08, ReductionStdFrac: 0.3,
		ZipfExponent: 1.1, MotifCount: 192, MotifMinSize: 3, MotifMaxSize: 6, MotifProb: 0.6,
		DenseDim: 13, Seed: 0x9ead2,
	},
	// Figure 5 presets use a single table: the skew study looks at one
	// EMT's row-block histogram.
	PresetGoodreadsSkew: {
		Name: PresetGoodreadsSkew, NumItems: 2_360_650, Tables: 1,
		AvgReduction: 245.8, ReductionStdFrac: 0.3,
		ZipfExponent: 1.15, MotifCount: 192, MotifMinSize: 3, MotifMaxSize: 6, MotifProb: 0.6,
		DenseDim: 13, Seed: 0x90001,
	},
	PresetMovieSkew: {
		Name: PresetMovieSkew, NumItems: 62_423, Tables: 1,
		AvgReduction: 80, ReductionStdFrac: 0.3,
		ZipfExponent: 1.05, MotifCount: 96, MotifMinSize: 2, MotifMaxSize: 5, MotifProb: 0.55,
		DenseDim: 13, Seed: 0x90002,
	},
	PresetTwitchSkew: {
		Name: PresetTwitchSkew, NumItems: 162_625, Tables: 1,
		AvgReduction: 60, ReductionStdFrac: 0.3,
		ZipfExponent: 1.25, MotifCount: 96, MotifMinSize: 2, MotifMaxSize: 5, MotifProb: 0.5,
		DenseDim: 13, Seed: 0x90003,
	},
}

func init() {
	// Write presets derive from their read counterparts so the two
	// traces differ only in update intensity — any partitioning or
	// latency difference between "read" and "write" is attributable to
	// the write stream alone.
	w := presets[PresetRead]
	w.Name, w.WriteRatio = PresetWrite, 0.25
	presets[PresetWrite] = w
	w2 := presets[PresetRead2]
	w2.Name, w2.WriteRatio = PresetWrite2, 0.40
	presets[PresetWrite2] = w2
}

// WritePresetNames returns the online-update workloads paired with
// their read-only baselines, in study order.
func WritePresetNames() []string {
	return []string{PresetRead, PresetWrite, PresetRead2, PresetWrite2}
}

// Preset returns the named workload spec.
func Preset(name string) (Spec, error) {
	s, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("synth: unknown preset %q (have %v)", name, PresetNames())
	}
	return s, nil
}

// PresetNames lists every preset in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table1Names returns the six evaluation workloads in the paper's order.
func Table1Names() []string {
	return []string{PresetClo, PresetHome, PresetMeta1, PresetMeta2, PresetRead, PresetRead2}
}

// Figure5Names returns the three skew-study workloads in the paper's
// order.
func Figure5Names() []string {
	return []string{PresetGoodreadsSkew, PresetMovieSkew, PresetTwitchSkew}
}

// Balanced returns a spec for the Figure 11 sensitivity study: uniform
// access pattern, given average reduction, one or more tables.
func Balanced(numItems, tables int, avgReduction float64, seed uint64) Spec {
	return Spec{
		Name:         fmt.Sprintf("balanced-r%.0f", avgReduction),
		NumItems:     numItems,
		Tables:       tables,
		AvgReduction: avgReduction,
		// Balanced: no skew, no co-occurrence, light degree variance.
		ReductionStdFrac: 0.1,
		ZipfExponent:     0,
		DenseDim:         13,
		Seed:             seed,
	}
}

// Scaled returns a copy of s with item count and reduction scaled by
// itemFrac and redFrac — used by tests and benches to shrink paper-scale
// workloads while preserving their shape (skew exponent, motif structure).
func Scaled(s Spec, itemFrac, redFrac float64) Spec {
	out := s
	out.Name = s.Name + "-scaled"
	out.NumItems = int(float64(s.NumItems) * itemFrac)
	if out.NumItems < 64 {
		out.NumItems = 64
	}
	out.AvgReduction = s.AvgReduction * redFrac
	if out.AvgReduction < 1 {
		out.AvgReduction = 1
	}
	return out
}
