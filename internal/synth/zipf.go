// Package synth generates deterministic synthetic DLRM workloads with the
// three properties every algorithm in the paper consumes: power-law item
// popularity (Figure 5), a configurable average reduction degree (Table 1),
// and item co-occurrence structure (the GRACE cache's food, §3.3). Presets
// reproduce the six Table 1 datasets and the three Figure 5 datasets.
package synth

import (
	"fmt"
	"math"

	"updlrm/internal/tensor"
)

// Zipf samples from a (finite) Zipf distribution over {0, 1, ..., n-1}
// where item i has weight (i+1)^-s. Exponent 0 degenerates to uniform.
// The implementation is Hörmann & Derflinger rejection-inversion (the same
// scheme as Apache Commons' RejectionInversionZipfSampler), which is O(1)
// per sample for any exponent > 0 and any n, so paper-scale tables with
// millions of items sample fast.
type Zipf struct {
	n        int
	s        float64
	rng      *tensor.RNG
	hX1      float64 // hIntegral(1.5) - 1
	hN       float64 // hIntegral(n + 0.5)
	shift    float64
	uniform  bool
	initDone bool
}

// NewZipf builds a sampler for n items with exponent s >= 0, drawing
// randomness from rng. It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64, rng *tensor.RNG) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("synth: Zipf n = %d", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("synth: Zipf exponent = %v", s))
	}
	z := &Zipf{n: n, s: s, rng: rng}
	if s == 0 {
		z.uniform = true
		z.initDone = true
		return z
	}
	z.hX1 = z.hIntegral(1.5) - 1
	z.hN = z.hIntegral(float64(n) + 0.5)
	z.shift = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	if z.shift > 1 {
		z.shift = 1
	}
	z.initDone = true
	return z
}

// h(x) = x^-s.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

// hIntegral is the antiderivative of h: (x^(1-s) - 1)/(1-s), or ln(x) when
// s == 1 (computed stably via expm1/log1p near s == 1).
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hIntegralInverse inverts hIntegral.
func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1 // guard against rounding below the domain
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with the x->0 limit handled.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3
}

// helper2 computes expm1(x)/x with the x->0 limit handled.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6
}

// Draw returns the next sample in [0, n).
func (z *Zipf) Draw() int {
	if !z.initDone {
		panic("synth: Zipf used before init")
	}
	if z.uniform {
		return z.rng.Intn(z.n)
	}
	for {
		u := z.hN + z.rng.Float64()*(z.hX1-z.hN)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.shift || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Exponent returns the skew parameter.
func (z *Zipf) Exponent() float64 { return z.s }
