package synth

import (
	"math"
	"testing"
)

// TestWritePresetsMirrorReadPresets: a write preset must generate a
// bit-identical read trace to its read counterpart — only the update
// intensity differs.
func TestWritePresetsMirrorReadPresets(t *testing.T) {
	pairs := [][2]string{{PresetRead, PresetWrite}, {PresetRead2, PresetWrite2}}
	for _, pair := range pairs {
		read, err := Preset(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		write, err := Preset(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if write.WriteRatio <= 0 {
			t.Fatalf("%s: WriteRatio = %v", pair[1], write.WriteRatio)
		}
		if read.WriteRatio != 0 {
			t.Fatalf("%s: read preset has WriteRatio %v", pair[0], read.WriteRatio)
		}
		if write.Seed != read.Seed || write.NumItems != read.NumItems {
			t.Fatalf("%s does not mirror %s", pair[1], pair[0])
		}
		rt, err := Scaled(read, 0.001, 0.2).Generate(16)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := Scaled(write, 0.001, 0.2).Generate(16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rt.Samples {
			for tab := range rt.Samples[i].Sparse {
				a, b := rt.Samples[i].Sparse[tab], wt.Samples[i].Sparse[tab]
				if len(a) != len(b) {
					t.Fatalf("sample %d table %d: bag sizes differ", i, tab)
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("sample %d table %d: read traces diverge", i, tab)
					}
				}
			}
		}
	}
	if got := WritePresetNames(); len(got) != 4 {
		t.Fatalf("WritePresetNames = %v", got)
	}
}

func TestUpdatesStream(t *testing.T) {
	spec, err := Preset(PresetWrite)
	if err != nil {
		t.Fatal(err)
	}
	spec = Scaled(spec, 0.001, 0.2)
	a, err := spec.Updates(4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Updates(4096)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, spec.NumItems)
	tables := map[int]bool{}
	for i, u := range a {
		if u != b[i] {
			t.Fatalf("update %d not deterministic: %+v vs %+v", i, u, b[i])
		}
		if u.Table < 0 || u.Table >= spec.Tables {
			t.Fatalf("update %d table %d out of range", i, u.Table)
		}
		if u.Row < 0 || int(u.Row) >= spec.NumItems {
			t.Fatalf("update %d row %d out of range", i, u.Row)
		}
		tables[u.Table] = true
		counts[u.Row]++
	}
	if len(tables) < 2 {
		t.Fatalf("updates hit only %d tables", len(tables))
	}
	// The stream must be skewed like the reads: head rows dominate.
	var head, total int64
	headSpan := spec.NumItems / 100
	for r, c := range counts {
		total += c
		if r < headSpan {
			head += c
		}
	}
	if frac := float64(head) / float64(total); frac < 0.3 {
		t.Fatalf("head %d%% of items got %.0f%% of writes — not Zipf-skewed",
			1, math.Round(100*frac))
	}
	if _, err := spec.Updates(-1); err == nil {
		t.Fatal("negative n accepted")
	}
}
