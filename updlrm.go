// Package updlrm is a library reproduction of "UpDLRM: Accelerating
// Personalized Recommendation using Real-World PIM Architecture"
// (DAC 2024): DLRM inference whose embedding layers are offloaded to a
// (simulated) UPMEM processing-in-memory system, with the paper's three
// embedding-table partitioning strategies — uniform tile-shape
// optimization, frequency-aware non-uniform bin-packing, and cache-aware
// partitioning over GRACE-style co-occurrence cache lists.
//
// The package is a facade over the internal implementation:
//
//   - Workloads: WorkloadSpec / Preset / Balanced generate deterministic
//     synthetic traces with the paper's Table 1 characteristics.
//   - Models: ModelConfig / NewModel build the DLRM (bottom MLP,
//     embedding tables, feature interaction, top MLP).
//   - Engines: EngineConfig / NewEngine build UpDLRM itself; the three
//     baselines of Table 2 are available through NewCPUBaseline,
//     NewHybridBaseline, and NewFAEBaseline.
//   - Results carry CTR outputs plus a per-stage latency Breakdown
//     (CPU→DPU, DPU lookup, DPU→CPU, host aggregation, MLP).
//
// A minimal end-to-end run:
//
//	spec, _ := updlrm.Preset("read")
//	tr, _ := updlrm.Scaled(spec, 0.01, 1.0).Generate(1024)
//	model, _ := updlrm.NewModel(updlrm.DefaultModelConfig(tr.RowsPerTable))
//	eng, _ := updlrm.NewEngine(model, tr, updlrm.DefaultEngineConfig())
//	ctrs, breakdown, _ := eng.RunTrace(tr, 64)
//
// Everything is deterministic given the seeds in the specs and configs.
package updlrm

import (
	"net"
	"net/http"

	"updlrm/internal/baseline"
	"updlrm/internal/cluster"
	"updlrm/internal/core"
	"updlrm/internal/dlrm"
	"updlrm/internal/governor"
	"updlrm/internal/grace"
	"updlrm/internal/hosthw"
	"updlrm/internal/hotcache"
	"updlrm/internal/metrics"
	"updlrm/internal/obs"
	"updlrm/internal/partition"
	"updlrm/internal/serve"
	"updlrm/internal/synth"
	"updlrm/internal/tensor"
	"updlrm/internal/trace"
	"updlrm/internal/upmem"
)

// Kernel selects the host dense-compute tier on EngineConfig.Kernel
// (and per shard via ServerConfig.ShardConfigs).
type Kernel = tensor.Kernel

// Kernel tiers.
const (
	// KernelExact (the default) is bit-identical to the per-sample
	// reference path and reproducible across architectures.
	KernelExact = tensor.KernelExact
	// KernelFast runs the AVX2/FMA 8-lane kernels (pure-Go fused
	// fallback off amd64): faster, identical up to float32 summation
	// order — compare CTRs under a tolerance.
	KernelFast = tensor.KernelFast
)

// ParseKernel maps the config spelling ("exact" — or empty — and
// "fast") to a kernel tier.
func ParseKernel(s string) (Kernel, error) { return tensor.ParseKernel(s) }

// FastKernelVectorized reports whether KernelFast is running on the
// AVX2/FMA assembly kernels rather than the portable fallback.
func FastKernelVectorized() bool { return tensor.FastVectorized() }

// Workload generation.
type (
	// WorkloadSpec describes a synthetic DLRM workload (items, tables,
	// reduction degree, popularity skew, co-occurrence motifs).
	WorkloadSpec = synth.Spec
	// Trace is a stream of inference requests.
	Trace = trace.Trace
	// Sample is one inference request.
	Sample = trace.Sample
	// Batch is a group of samples in the engines' CSR layout.
	Batch = trace.Batch
)

// Model building.
type (
	// ModelConfig describes a DLRM instance.
	ModelConfig = dlrm.Config
	// Model is a materialized DLRM.
	Model = dlrm.Model
)

// UpDLRM engine.
type (
	// EngineConfig assembles an UpDLRM engine.
	EngineConfig = core.Config
	// Engine is the DPU-offloaded inference engine.
	Engine = core.Engine
	// EngineResult is one batch's outcome.
	EngineResult = core.Result
	// HeteroEngine is the §6 future-work DPU-GPU system.
	HeteroEngine = core.HeteroEngine
	// PipelineResult summarizes a batch-pipelined run.
	PipelineResult = core.PipelineResult
	// PartitionMethod selects among the paper's §3 strategies.
	PartitionMethod = partition.Method
	// Plan is a table's partitioning outcome.
	Plan = partition.Plan
	// HWConfig is the DPU hardware model configuration.
	HWConfig = upmem.HWConfig
	// CacheMinerConfig tunes the GRACE-style cache-list miner.
	CacheMinerConfig = grace.Config
)

// Baselines.
type (
	// BaselineSystem is any timed DLRM implementation.
	BaselineSystem = baseline.System
	// BaselineResult is one batch's outcome from a baseline.
	BaselineResult = baseline.Result
	// CPUModel, GPUModel and PCIeModel parameterize the host hardware.
	CPUModel  = hosthw.CPUModel
	GPUModel  = hosthw.GPUModel
	PCIeModel = hosthw.PCIeModel
	// HybridConfig and FAEConfig tune the hybrid baselines.
	HybridConfig = baseline.HybridConfig
	FAEConfig    = baseline.FAEConfig
)

// Breakdown attributes modeled latency to pipeline stages.
type Breakdown = metrics.Breakdown

// Serving runtime.
type (
	// Server shards engine replicas behind the QoS request scheduler
	// (see NewServer).
	Server = serve.Server
	// ServerConfig tunes shard count, batching window, queue depth,
	// per-class QoS scheduling (Classes), per-shard engine heterogeneity
	// (ShardConfigs) and cross-batch pipelining (Pipeline/ShardPipeline:
	// shard workers overlap queued micro-batches on the LINK/DPUS/HOST
	// schedule).
	ServerConfig = serve.Config
	// ServeRequest is one online inference request, tagged with a
	// RequestClass (untagged requests are NormalClass).
	ServeRequest = serve.Request
	// ServeResponse is the served outcome, with per-request modeled
	// latency (queueing + batch breakdown), the serving shard, and the
	// request's class.
	ServeResponse = serve.Response
	// ServerStats summarizes served traffic (p50/p95/p99 for end-to-end
	// and queueing delay — overall and per QoS class — throughput,
	// batch coalescing, per-class shed counts, per-shard routing
	// profiles, DPU memory traffic, hot-row cache effectiveness, and
	// the modeled pipeline speedup when shard workers overlap batches).
	ServerStats = serve.Stats
	// RequestClass is a request's QoS class: CriticalClass requests are
	// scheduled first within every round, BatchClass yields but is
	// never starved, NormalClass (the zero value) sits between.
	RequestClass = serve.Class
	// ClassConfig overrides one class's scheduling (DRR weight,
	// micro-batch cap, batching window, queue depth) on
	// ServerConfig.Classes.
	ClassConfig = serve.ClassConfig
	// ClassStats is one QoS class's slice of ServerStats.
	ClassStats = serve.ClassStats
	// ShardStats is one shard's routed traffic and the router's current
	// cost profile for it.
	ShardStats = serve.ShardStats
	// HotCacheConfig sizes the serving-tier hot-row embedding cache
	// (TinyLFU admission over the live stream); set it on ServerConfig.
	// A zero CapacityBytes disables the cache, leaving serving
	// bit-identical to a cache-less deployment. NewServer partitions
	// the capacity per embedding table by default (see Config.Tables).
	HotCacheConfig = hotcache.Config
	// HotCache is a shared hot-row embedding cache instance; build one
	// with NewHotCache to share across engines outside NewServer.
	HotCache = hotcache.Cache
	// HotCacheStats snapshots a cache's effectiveness counters.
	HotCacheStats = hotcache.Stats
	// GovernorConfig shapes the pressure governor (ServerConfig.Governor
	// / ClusterConfig.Governor): a memory budget with High/Critical
	// watermarks. Under pressure the server degrades gracefully —
	// shrink the hot cache and cap arena growth at High, shed Batch-
	// then Normal-class admission approaching and past the budget —
	// and recovers in reverse order as pressure recedes. A zero
	// BudgetBytes disables governing.
	GovernorConfig = governor.Config
	// GovernorBand is the governor's pressure band: GovernorNormal,
	// GovernorHigh or GovernorCritical.
	GovernorBand = governor.Band
	// Delta is one additive embedding-row update for Server.ApplyDeltas:
	// Vec (len EmbDim) is added into (Table, Row) on every shard
	// replica, coherently with in-flight batches.
	Delta = serve.Delta
	// RowUpdate identifies one row of a synthetic online-update stream
	// (see WorkloadSpec.Updates).
	RowUpdate = synth.RowUpdate
	// UpdateResult is one engine-level ApplyDeltas outcome: rows
	// written, hot-cache invalidations, and the modeled MRAM write
	// traffic and time.
	UpdateResult = core.UpdateResult
)

// QoS classes for ServeRequest.Class.
const (
	// NormalClass is the default class for untagged requests.
	NormalClass = serve.Normal
	// CriticalClass is latency-sensitive ranking traffic: served first
	// in every scheduler round, opportunistic micro-batching.
	CriticalClass = serve.Critical
	// BatchClass is best-effort prefetch/backfill traffic: it yields to
	// the other classes but keeps a guaranteed share of every round.
	BatchClass = serve.Batch
	// NumRequestClasses is the number of QoS classes (indexes
	// ServerConfig.Classes and ServerStats.PerClass).
	NumRequestClasses = serve.NumClasses
)

// Pressure-governor bands for GovernorBand (ServerStats.GovernorBand
// reports the band as a string).
const (
	// GovernorNormal: tracked bytes below the High watermark; no
	// remediation engaged.
	GovernorNormal = governor.BandNormal
	// GovernorHigh: resource remediation (cache shrink, arena caps) is
	// active; no admission shedding.
	GovernorHigh = governor.BandHigh
	// GovernorCritical: lower-class admission shedding is active;
	// Critical-class traffic is the last to feel pressure.
	GovernorCritical = governor.BandCritical
)

// Observability: a dependency-free metrics registry (Prometheus text
// exposition) plus a sampled per-request stage tracer. Set a registry
// and tracer on ServerConfig.Metrics / ServerConfig.Tracer to
// instrument a server, then expose them over HTTP with MetricsHandler
// or diff phases programmatically with MetricsRegistry.Snapshot.
type (
	// MetricsRegistry collects counters, gauges and histograms and
	// renders them in Prometheus text exposition format. Each Server
	// needs its own registry (instrument names are registered once).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time flat view of a registry,
	// diffable across experiment phases with Sub.
	MetricsSnapshot = obs.Snapshot
	// Tracer buffers sampled per-request stage-span traces.
	Tracer = obs.Tracer
	// TraceRecord is one sampled request's stage attribution.
	TraceRecord = obs.TraceRecord
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a tracer sampling 1 in sampleEvery requests into a
// ring of the most recent capacity records.
func NewTracer(sampleEvery, capacity int) *Tracer { return obs.NewTracer(sampleEvery, capacity) }

// MetricsHandler exposes a registry at /metrics (Prometheus text
// format) and a tracer's buffered records at /debug/traces (JSON);
// either argument may be nil.
func MetricsHandler(reg *MetricsRegistry, tracer *Tracer) http.Handler {
	return obs.Handler(reg, tracer)
}

// Inferencer is the serving contract every deployment shape satisfies:
// the single-process *Server (NewServer) and the table-partitioned
// cluster frontend (NewCluster / DialCluster). Drivers — load
// generators, HTTP transports, examples — should accept an Inferencer
// so the same code exercises both.
//
// Error taxonomy, common to all implementations:
//
//   - ErrBadServeRequest wraps request-shape validation failures —
//     caller bugs, never retryable.
//   - An *OverloadError (errors.Is(err, ErrServerOverloaded) for the
//     predict lane, errors.Is(err, ErrUpdateOverloaded) for the update
//     lane) means admission control shed the call at the door —
//     retryable after backoff, counted as shed traffic, not failure.
//   - ErrServerClosed means the deployment was shut down.
//   - Context errors pass through unwrapped when the caller's ctx ends
//     first.
type Inferencer = serve.Inferencer

// OverloadError is the typed overload signal both admission lanes shed
// with; its Lane field reports which lane (PredictLane or UpdateLane)
// rejected the call. It satisfies errors.Is against the historical
// ErrServerOverloaded / ErrUpdateOverloaded sentinels.
type OverloadError = serve.OverloadError

// OverloadLane identifies which admission lane an OverloadError was
// shed from.
type OverloadLane = serve.Lane

// Overload lanes.
const (
	// PredictLane is the read path's per-class request queue.
	PredictLane = serve.LanePredict
	// UpdateLane is the embedding-update lane's queue.
	UpdateLane = serve.LaneUpdate
)

// Cluster serving: the table-partitioned multi-node fabric. Backend
// nodes each own a consistent-hashed set of (table, row-range) keys and
// run an engine over only their slices; the frontend fans each
// micro-batch's lookups out to the owning nodes, gathers the partial
// reductions over the transport, and runs the dense head locally. The
// interconnect is charged into Breakdown.NetworkNs (bytes over
// ClusterConfig.Link).
type (
	// ClusterConfig shapes a cluster deployment; the same value must be
	// given to the frontend and every backend (placement is computed,
	// not negotiated).
	ClusterConfig = cluster.Config
	// ClusterFrontend is the cluster's serving face — an Inferencer.
	ClusterFrontend = cluster.Frontend
	// ClusterBackend is one node's engine over its table slices.
	ClusterBackend = cluster.Backend
	// ClusterBackendServer serves one backend's RPCs over TCP.
	ClusterBackendServer = cluster.BackendServer
	// ClusterTransport moves cluster RPCs to named backend nodes.
	ClusterTransport = cluster.Transport
	// ClusterNodeStats is one backend's cumulative fabric traffic.
	ClusterNodeStats = cluster.NodeStats
	// ClusterServingStats supplements ServerStats with per-node RPC
	// traffic and the modeled interconnect total.
	ClusterServingStats = cluster.ClusterStats
	// LinkModel prices the inter-node fabric (per-message latency plus
	// bytes over bandwidth) for Breakdown.NetworkNs.
	LinkModel = cluster.LinkModel
)

// DefaultLinkModel returns the default interconnect model (25 GbE-class
// latency and bandwidth).
func DefaultLinkModel() LinkModel { return cluster.DefaultLink() }

// NewCluster builds a complete in-process cluster — one backend per
// configured node behind a zero-real-latency in-process transport, and
// a frontend over it. With table-aligned ownership
// (ClusterConfig.RangesPerTable == 1, the default) and no hot cache,
// predictions are bit-identical to a single-node NewServer over the
// same model. Close the frontend when done.
func NewCluster(model *Model, profile *Trace, ecfg EngineConfig, cfg ClusterConfig) (*ClusterFrontend, []*ClusterBackend, error) {
	return cluster.New(model, profile, ecfg, cfg)
}

// NewClusterBackend builds one named node's backend for a TCP
// deployment; serve it with ServeClusterBackend. All parties must pass
// the same model, profile, engine config and cluster config.
func NewClusterBackend(model *Model, profile *Trace, ecfg EngineConfig, cfg ClusterConfig, node string) (*ClusterBackend, error) {
	return cluster.NewBackend(model, profile, ecfg, cfg, node)
}

// ServeClusterBackend serves a backend's RPCs on the listener (the
// listener's address is the node name frontends dial).
func ServeClusterBackend(ln net.Listener, b *ClusterBackend) *ClusterBackendServer {
	return cluster.ServeBackend(ln, b)
}

// DialCluster builds a cluster frontend over the length-prefixed TCP
// transport, dialing the configured node names as host:port addresses —
// the real-deployment counterpart of NewCluster. Close the frontend
// when done (it closes the transport).
func DialCluster(model *Model, profile *Trace, ecfg EngineConfig, cfg ClusterConfig) (*ClusterFrontend, error) {
	return cluster.NewFrontend(model, profile, ecfg, cfg, cluster.NewTCPTransport(cfg.CallTimeout))
}

// ErrServerClosed is returned by Server.Predict after Close.
var ErrServerClosed = serve.ErrClosed

// ErrBadServeRequest wraps request-shape validation failures from
// Server.Predict (wrong dense width, wrong table count, out-of-range
// index), letting transports map them to client-error statuses.
var ErrBadServeRequest = serve.ErrBadRequest

// ErrServerOverloaded is returned by Server.Predict when the request
// queue is full: the server sheds instead of queueing unboundedly.
// Transports should map it to a retryable status (HTTP 503).
var ErrServerOverloaded = serve.ErrOverloaded

// ErrUpdateOverloaded is returned by Server.ApplyDeltas when the update
// lane's admission queue is full; retryable like ErrServerOverloaded.
var ErrUpdateOverloaded = serve.ErrUpdateOverloaded

// Partitioning strategies (the paper's §3.1-§3.3).
const (
	// Uniform is §3.1: equal contiguous row blocks with an optimized
	// tile shape.
	Uniform = partition.MethodUniform
	// NonUniform is §3.2: greedy frequency bin-packing.
	NonUniform = partition.MethodNonUniform
	// CacheAware is §3.3 / Algorithm 1.
	CacheAware = partition.MethodCacheAware
)

// Preset returns a named workload spec; see PresetNames for the
// catalogue (the six Table 1 datasets plus the Figure 5 skew studies).
func Preset(name string) (WorkloadSpec, error) { return synth.Preset(name) }

// PresetNames lists every available workload preset.
func PresetNames() []string { return synth.PresetNames() }

// WritePresetNames returns the online-update workloads ("write",
// "write2") paired with their read-only baselines, in study order.
func WritePresetNames() []string { return synth.WritePresetNames() }

// Table1Names returns the six evaluation workloads in the paper's order.
func Table1Names() []string { return synth.Table1Names() }

// Scaled shrinks a spec's item count and reduction degree while keeping
// its shape (skew, motifs) — useful for laptop-scale experimentation.
func Scaled(s WorkloadSpec, itemFrac, redFrac float64) WorkloadSpec {
	return synth.Scaled(s, itemFrac, redFrac)
}

// Balanced returns a uniform-access spec (the Figure 11 sensitivity
// workload).
func Balanced(numItems, tables int, avgReduction float64, seed uint64) WorkloadSpec {
	return synth.Balanced(numItems, tables, avgReduction, seed)
}

// DefaultModelConfig returns the paper's §4.1 model: 32-dim embeddings,
// 13 dense features, inference-sized MLPs.
func DefaultModelConfig(rowsPerTable []int) ModelConfig {
	return dlrm.DefaultConfig(rowsPerTable)
}

// NewModel builds a DLRM with deterministic weights and tables.
func NewModel(cfg ModelConfig) (*Model, error) { return dlrm.New(cfg) }

// DefaultEngineConfig returns the paper's evaluation configuration:
// 256 DPUs at 350 MHz with 14 tasklets, cache-aware partitioning, batch
// size 64.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// DefaultHWConfig returns the calibrated UPMEM hardware model.
func DefaultHWConfig() HWConfig { return upmem.DefaultConfig() }

// NewEngine builds an UpDLRM engine: it mines cache lists (when
// cache-aware), partitions every table per the configured strategy, and
// prepares the simulated DPU system. The profile trace supplies access
// frequencies and co-occurrence statistics.
func NewEngine(model *Model, profile *Trace, cfg EngineConfig) (*Engine, error) {
	return core.New(model, profile, cfg)
}

// DefaultCPUModel returns the calibrated Table 2 host CPU.
func DefaultCPUModel() CPUModel { return hosthw.DefaultCPU() }

// DefaultGPUModel returns the calibrated Table 2 GPU.
func DefaultGPUModel() GPUModel { return hosthw.DefaultGPU() }

// DefaultPCIeModel returns the calibrated host-device link.
func DefaultPCIeModel() PCIeModel { return hosthw.DefaultPCIe() }

// NewCPUBaseline builds DLRM-CPU (Table 2).
func NewCPUBaseline(model *Model, cpu CPUModel) (BaselineSystem, error) {
	return baseline.NewCPU(model, cpu)
}

// NewHybridBaseline builds DLRM-Hybrid (Table 2).
func NewHybridBaseline(model *Model, cpu CPUModel, gpu GPUModel, pcie PCIeModel,
	cfg HybridConfig) (BaselineSystem, error) {
	return baseline.NewHybrid(model, cpu, gpu, pcie, cfg)
}

// DefaultHybridConfig returns the calibrated hybrid fixed costs.
func DefaultHybridConfig(numTables int) HybridConfig {
	return baseline.DefaultHybridConfig(numTables)
}

// NewFAEBaseline builds FAE (Table 2), deriving hot sets from the
// profile trace.
func NewFAEBaseline(model *Model, profile *Trace, cpu CPUModel, gpu GPUModel,
	pcie PCIeModel, cfg FAEConfig) (BaselineSystem, error) {
	return baseline.NewFAE(model, profile, cpu, gpu, pcie, cfg)
}

// DefaultFAEConfig returns the calibrated FAE parameters.
func DefaultFAEConfig() FAEConfig { return baseline.DefaultFAEConfig() }

// NewHeteroEngine wraps an engine with the §6 future-work GPU back end
// (DPU embedding stages + PCIe + GPU dense model).
func NewHeteroEngine(base *Engine, gpu GPUModel, pcie PCIeModel) (*HeteroEngine, error) {
	return core.NewHetero(base, gpu, pcie)
}

// RunBaseline runs every batch of a trace through a baseline system.
func RunBaseline(s BaselineSystem, tr *Trace, batchSize int) ([]float32, Breakdown, error) {
	return baseline.RunTrace(s, tr, batchSize)
}

// MakeBatches cuts a trace into consecutive batches.
func MakeBatches(tr *Trace, batchSize int) []*Batch {
	return trace.Batches(tr, batchSize)
}

// NewServer builds a concurrent serving runtime: independent engine
// replicas (per-shard model clones, each partitioned from the same
// profile) behind the QoS scheduler — per-class admission queues,
// weighted deficit-round-robin dispatch, and profile-driven routing of
// each micro-batch to the predicted-cheapest shard.
//
// By default every replica runs ecfg (cfg.Shards homogeneous shards).
// When cfg.ShardConfigs is non-empty the tier is heterogeneous: shard i
// is built from cfg.ShardConfigs[i] — different partition methods, tile
// shapes or quantization per replica — and the router steers traffic to
// whichever configuration is cheapest for the offered batches.
//
// When cfg.HotCache.CapacityBytes is non-zero, one serving-tier
// hot-row cache is built and shared by every replica: hot embedding
// rows are served host-side, cold rows take the DPU pipeline, and
// Stats reports hit rate and bytes saved. Close the server when done
// to stop its background goroutines.
func NewServer(model *Model, profile *Trace, ecfg EngineConfig, cfg ServerConfig) (*Server, error) {
	// Serving default: the shared hot cache partitions its capacity per
	// embedding table (segment t serves table t) so one burst-hot table
	// cannot evict the others' hot sets; serve.NewHotCacheFor is the
	// same sizing policy cluster backends apply to their table slices.
	var cache *hotcache.Cache
	if model != nil {
		c, err := serve.NewHotCacheFor(cfg.HotCache, model.Cfg.NumTables(), model.Cfg.EmbDim)
		if err != nil {
			return nil, err
		}
		cache = c
	}
	shardCfgs := cfg.ShardConfigs
	if len(shardCfgs) == 0 {
		n := cfg.Shards
		if n <= 0 {
			n = serve.DefaultShards
		}
		shardCfgs = make([]EngineConfig, n)
		for i := range shardCfgs {
			shardCfgs[i] = ecfg
		}
	}
	cfgs := make([]EngineConfig, len(shardCfgs))
	for i, sc := range shardCfgs {
		cfgs[i] = sc.Clone()
		if cache != nil {
			cfgs[i].HotCache = cache
		}
	}
	engines, err := serve.NewShards(model, profile, cfgs)
	if err != nil {
		return nil, err
	}
	return serve.New(engines, cfg)
}

// NewHotCache builds a standalone serving-tier hot-row cache for
// embedding vectors of the given dimension; set it on
// EngineConfig.HotCache to share one cache across hand-built engines.
// A zero-capacity config returns nil (disabled), which is valid.
func NewHotCache(cfg HotCacheConfig, dim int) (*HotCache, error) {
	return hotcache.New(cfg, dim)
}
