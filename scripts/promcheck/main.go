// Command promcheck scrapes a running updlrm server's /metrics
// endpoint and verifies the response is valid Prometheus text
// exposition covering the serving stack's instrument families — the CI
// smoke test for the observability surface. It retries the first fetch
// while the server starts up, validates the exposition with the same
// parser the unit tests use (histogram cumulativity, +Inf buckets,
// counter non-negativity), and fails if any required family is absent.
//
// With -nonzero, it additionally rescrapes until every listed family
// shows a positive sample — the pressure-smoke assertion that a
// governed overload run actually left the normal band and shed load,
// not merely that the instruments exist.
//
// Usage:
//
//	go run ./scripts/promcheck -url http://127.0.0.1:8097/metrics
//	go run ./scripts/promcheck -url ... -nonzero governor_band_transitions_total,governor_shed_total
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"updlrm/internal/obs"
)

// requiredFamilies is the contract the serving stack's /metrics surface
// must cover: per-class serving traffic, router state, the hot-row
// cache, the update lane, and the per-stage engine histograms.
var requiredFamilies = []string{
	"serve_admitted_total",
	"serve_requests_total",
	"serve_shed_total",
	"serve_request_modeled_ns",
	"serve_queue_wait_ns",
	"serve_request_span_ns",
	"serve_batches_total",
	"serve_queue_depth",
	"serve_router_backlog_ns",
	"serve_router_profile_ns",
	"hotcache_hits_total",
	"hotcache_misses_total",
	"hotcache_entries",
	"serve_update_queue_depth",
	"serve_update_rows_total",
	"serve_update_invalidations_total",
	"governor_band",
	"governor_pressure",
	"governor_budget_bytes",
	"governor_tracked_bytes",
	"governor_band_transitions_total",
	"governor_cache_resizes_total",
	"governor_shed_total",
	"serve_slo_shed_total",
	"serve_predicted_wait_ns",
	"serve_reprobe_total",
	"core_stage_modeled_ns",
	"core_mram_read_bytes",
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8097/metrics", "metrics endpoint to scrape")
	wait := flag.Duration("wait", 15*time.Second, "retry window for the first successful fetch")
	nonzero := flag.String("nonzero", "",
		"comma-separated families that must show a positive sample; rescraped until satisfied or -wait expires (the pressure-smoke assertion)")
	flag.Parse()

	body, err := fetch(*url, *wait)
	if err != nil {
		fail("fetch %s: %v", *url, err)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		fail("invalid exposition: %v", err)
	}
	var missing []string
	for _, name := range requiredFamilies {
		if _, ok := fams[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fail("exposition parsed but %d required families are missing: %v", len(missing), missing)
	}
	if *nonzero != "" {
		if err := awaitNonzero(*url, *wait, strings.Split(*nonzero, ",")); err != nil {
			fail("%v", err)
		}
	}
	samples := 0
	for _, f := range fams {
		for _, ss := range f.Samples {
			samples += len(ss)
		}
	}
	fmt.Printf("promcheck: OK — %d families (%d required present), %d samples, exposition valid\n",
		len(fams), len(requiredFamilies), samples)
}

// awaitNonzero rescrapes until every listed family has at least one
// sample with a positive value — the assertion a pressure smoke run
// makes about the governor actually engaging (band transitions and
// sheds are monotonic counters, so once seen they stay satisfied). The
// load producing the pressure ramps up concurrently, hence the retry.
func awaitNonzero(url string, wait time.Duration, names []string) error {
	deadline := time.Now().Add(wait)
	var unsatisfied []string
	for {
		body, err := fetch(url, time.Until(deadline))
		if err != nil {
			return fmt.Errorf("nonzero check: fetch: %v (still zero: %v)", err, unsatisfied)
		}
		fams, err := obs.ParseExposition(body)
		if err != nil {
			return fmt.Errorf("nonzero check: invalid exposition: %v", err)
		}
		unsatisfied = unsatisfied[:0]
		for _, name := range names {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			fam, ok := fams[name]
			positive := false
			if ok {
				for _, ss := range fam.Samples {
					for _, s := range ss {
						if s.Value > 0 {
							positive = true
						}
					}
				}
			}
			if !positive {
				unsatisfied = append(unsatisfied, name)
			}
		}
		if len(unsatisfied) == 0 {
			fmt.Printf("promcheck: nonzero OK — %v all positive\n", names)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nonzero check: %v never went positive within %v", unsatisfied, wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// fetch GETs the URL, retrying connection failures until the deadline —
// CI starts the server in the background, so the first scrapes race its
// listener coming up. Non-2xx responses fail immediately.
func fetch(url string, wait time.Duration) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url)
		if err != nil {
			if time.Now().After(deadline) {
				return "", err
			}
			time.Sleep(200 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %s: %s", resp.Status, body)
		}
		return string(body), nil
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
