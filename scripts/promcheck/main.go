// Command promcheck scrapes a running updlrm server's /metrics
// endpoint and verifies the response is valid Prometheus text
// exposition covering the serving stack's instrument families — the CI
// smoke test for the observability surface. It retries the first fetch
// while the server starts up, validates the exposition with the same
// parser the unit tests use (histogram cumulativity, +Inf buckets,
// counter non-negativity), and fails if any required family is absent.
//
// Usage:
//
//	go run ./scripts/promcheck -url http://127.0.0.1:8097/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"updlrm/internal/obs"
)

// requiredFamilies is the contract the serving stack's /metrics surface
// must cover: per-class serving traffic, router state, the hot-row
// cache, the update lane, and the per-stage engine histograms.
var requiredFamilies = []string{
	"serve_admitted_total",
	"serve_requests_total",
	"serve_shed_total",
	"serve_request_modeled_ns",
	"serve_queue_wait_ns",
	"serve_request_span_ns",
	"serve_batches_total",
	"serve_queue_depth",
	"serve_router_backlog_ns",
	"serve_router_profile_ns",
	"hotcache_hits_total",
	"hotcache_misses_total",
	"hotcache_entries",
	"serve_update_queue_depth",
	"serve_update_rows_total",
	"serve_update_invalidations_total",
	"core_stage_modeled_ns",
	"core_mram_read_bytes",
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8097/metrics", "metrics endpoint to scrape")
	wait := flag.Duration("wait", 15*time.Second, "retry window for the first successful fetch")
	flag.Parse()

	body, err := fetch(*url, *wait)
	if err != nil {
		fail("fetch %s: %v", *url, err)
	}
	fams, err := obs.ParseExposition(body)
	if err != nil {
		fail("invalid exposition: %v", err)
	}
	var missing []string
	for _, name := range requiredFamilies {
		if _, ok := fams[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fail("exposition parsed but %d required families are missing: %v", len(missing), missing)
	}
	samples := 0
	for _, f := range fams {
		for _, ss := range f.Samples {
			samples += len(ss)
		}
	}
	fmt.Printf("promcheck: OK — %d families (%d required present), %d samples, exposition valid\n",
		len(fams), len(requiredFamilies), samples)
}

// fetch GETs the URL, retrying connection failures until the deadline —
// CI starts the server in the background, so the first scrapes race its
// listener coming up. Non-2xx responses fail immediately.
func fetch(url string, wait time.Duration) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url)
		if err != nil {
			if time.Now().After(deadline) {
				return "", err
			}
			time.Sleep(200 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %s: %s", resp.Status, body)
		}
		return string(body), nil
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
