// Command bench_compare diffs a fresh scripts/bench.sh run against the
// committed BENCH_hotpath.json baseline and exits non-zero when the hot
// path regressed — the CI benchmark-regression gate.
//
// A benchmark regresses when its best ns/op exceeds the baseline's by
// more than -tol (default 25%, absorbing shared-runner noise; repeated
// counts are aggregated by min), or when allocs/op increases at all
// (allocations are deterministic, so any increase is a real leak into
// the hot path). A benchmark present in the baseline but missing from
// the fresh run also fails: the suite rotted. Baselines are keyed by
// (pkg, name, kernel tier), so the exact and fast GEMM tiers are each
// held to their own numbers; pre-tier baselines read as exact.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_hotpath.json -fresh /tmp/fresh.json
//	go run ./scripts -baseline BENCH_hotpath.json -fresh /tmp/fresh.json -tol 0.10
//
// To refresh the committed baseline after an intentional perf change:
//
//	COUNT=5 ./scripts/bench.sh && git add BENCH_hotpath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// sortedKeys returns a map's keys in lexical order so report rows are
// stable across runs.
func sortedKeys(m map[string]entry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type benchFile struct {
	Generated  string  `json:"generated"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg"`
	// Kernel is the GEMM tier the run used ("exact"/"fast"); records
	// from baselines predating the tier dimension default to "exact".
	Kernel   string  `json:"kernel"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// entry is one benchmark's aggregate across repeated counts: best-case
// ns (noise-robust), best-case bytes, and worst-case allocs
// (deterministic anyway).
type entry struct {
	minNs     float64
	minBytes  int64
	maxAllocs int64
}

func load(path string) (map[string]entry, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Benchmarks) == 0 {
		return nil, "", fmt.Errorf("%s: no benchmarks recorded", path)
	}
	out := make(map[string]entry)
	for _, b := range bf.Benchmarks {
		kern := b.Kernel
		if kern == "" {
			kern = "exact"
		}
		key := b.Pkg + " " + b.Name + " [" + kern + "]"
		e, ok := out[key]
		if !ok {
			e = entry{minNs: b.NsPerOp, minBytes: b.BytesOp, maxAllocs: b.AllocsOp}
		} else {
			if b.NsPerOp < e.minNs {
				e.minNs = b.NsPerOp
			}
			if b.BytesOp < e.minBytes {
				e.minBytes = b.BytesOp
			}
			if b.AllocsOp > e.maxAllocs {
				e.maxAllocs = b.AllocsOp
			}
		}
		out[key] = e
	}
	return out, bf.Generated, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_hotpath.json", "committed baseline file")
		freshPath    = flag.String("fresh", "", "fresh bench.sh output to compare (required)")
		tol          = flag.Float64("tol", 0.25, "allowed fractional ns/op regression (0.25 = +25%)")
	)
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -fresh is required")
		os.Exit(2)
	}
	baseline, baseGen, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	fresh, freshGen, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}

	// The delta table prints on every run, pass or fail, so the perf
	// trajectory (old -> new ns/op, bytes/op, allocs/op) is visible in
	// the job log of every push, not only on regressions.
	fmt.Printf("bench_compare: baseline %s (%s) vs fresh %s (%s), tol +%.0f%%\n\n",
		*baselinePath, baseGen, *freshPath, freshGen, 100**tol)
	fmt.Printf("%-60s %14s %14s %8s %15s %11s %7s\n",
		"benchmark", "base ns/op", "fresh ns/op", "delta", "B/op", "allocs", "status")

	failed := false
	var logSum float64
	var logN int
	for _, key := range sortedKeys(baseline) {
		base := baseline[key]
		f, ok := fresh[key]
		if !ok {
			fmt.Printf("%-60s %14.0f %14s %8s %15s %11s %7s\n", key, base.minNs, "-", "-", "-", "-", "MISSING")
			failed = true
			continue
		}
		delta := f.minNs/base.minNs - 1
		logSum += math.Log(f.minNs / base.minNs)
		logN++
		status := "ok"
		switch {
		case f.maxAllocs > base.maxAllocs:
			status = "ALLOCS"
			failed = true
		case delta > *tol:
			status = "SLOW"
			failed = true
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%% %7d/%-7d %5d/%-5d %7s\n",
			key, base.minNs, f.minNs, 100*delta,
			base.minBytes, f.minBytes, base.maxAllocs, f.maxAllocs, status)
	}
	for _, key := range sortedKeys(fresh) {
		if _, ok := baseline[key]; !ok {
			f := fresh[key]
			fmt.Printf("%-60s %14s %14.0f %8s %7s/%-7d %5s/%-5d %7s\n",
				key, "-", f.minNs, "-", "-", f.minBytes, "-", f.maxAllocs, "NEW")
		}
	}
	if logN > 0 {
		fmt.Printf("\ngeomean ns/op delta vs baseline: %+.1f%% across %d benchmarks\n",
			100*(math.Exp(logSum/float64(logN))-1), logN)
	}

	if failed {
		fmt.Println("\nbench_compare: REGRESSION — ns/op beyond tolerance, allocs/op increase, or missing benchmark.")
		fmt.Println("If intentional, refresh the baseline: COUNT=5 ./scripts/bench.sh && git add BENCH_hotpath.json")
		os.Exit(1)
	}
	fmt.Println("\nbench_compare: OK — no regression; delta table above tracks the trajectory.")
}
