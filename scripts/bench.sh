#!/bin/sh
# scripts/bench.sh — run the hot-path micro-benchmarks (RunBatch,
# RunTracePipelined, ForwardBatch, ServeThroughput, ApplyDeltas,
# ServeMixedRW) with -benchmem and record the results as
# BENCH_hotpath.json at the repo root, so the perf trajectory of the
# batch execution path is tracked in-tree.
#
# The suite runs once per kernel tier (UPDLRM_BENCH_KERNEL=exact/fast
# is exported to the bench processes) and each JSON record carries its
# tier, so the regression gate (scripts/bench_compare.go) holds both
# the bit-identical tier and the AVX2/FMA tier to their own baselines.
#
#   ./scripts/bench.sh                      # both tiers, 1 run per benchmark
#   KERNEL=exact ./scripts/bench.sh         # one tier only
#   COUNT=5 ./scripts/bench.sh              # 5 runs per benchmark
#   OUT=/tmp/fresh.json ./scripts/bench.sh  # write elsewhere (CI gate:
#                                           # compare with scripts/bench_compare.go)
set -eu
cd "$(dirname "$0")/.."
out="${OUT:-BENCH_hotpath.json}"
kernels="${KERNEL:-exact fast}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
for k in $kernels; do
	echo "benchkernel: $k"
	UPDLRM_BENCH_KERNEL="$k" go test -run '^$' \
		-bench 'BenchmarkRunBatch$|BenchmarkRunTracePipelined$|BenchmarkForwardBatch$|BenchmarkServeThroughput$|BenchmarkApplyDeltas$|BenchmarkServeMixedRW$' \
		-benchmem -count "${COUNT:-1}" \
		./internal/core ./internal/dlrm ./internal/serve
done >"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	BEGIN {
		printf "{\n  \"generated\": \"%s\",\n", date
		n = 0
	}
	/^benchkernel: / { kernel = $2 }
	/^goos: / { goos = $2 }
	/^goarch: / { goarch = $2 }
	/^pkg: / { pkg = $2 }
	/^cpu: / { sub(/^cpu: /, ""); cpu = $0 }
	/^Benchmark/ {
		if (n == 0)
			printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n", goos, goarch, cpu
		else
			printf ",\n"
		printf "    {\"name\": \"%s\", \"pkg\": \"%s\", \"kernel\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			$1, pkg, kernel, $2, $3, $5, $7
		n++
	}
	END {
		if (n == 0) { print "  \"benchmarks\": []\n}"; exit 1 }
		printf "\n  ]\n}\n"
	}' <"$tmp" >"$out"

echo "wrote $out:"
cat "$out"
