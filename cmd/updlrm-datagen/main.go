// Command updlrm-datagen generates and inspects the synthetic DLRM
// workloads that stand in for the paper's datasets.
//
// Usage:
//
//	updlrm-datagen -list
//	updlrm-datagen -preset=read -samples=1024 -out=read.trace
//	updlrm-datagen -preset=movie -samples=1024 -stats
//	updlrm-datagen -in=read.trace -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"updlrm/internal/synth"
	"updlrm/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available presets and exit")
	preset := flag.String("preset", "", "workload preset to generate")
	samples := flag.Int("samples", 1024, "number of samples to generate")
	itemFrac := flag.Float64("item-frac", 1.0, "scale item count by this fraction")
	redFrac := flag.Float64("red-frac", 1.0, "scale average reduction by this fraction")
	out := flag.String("out", "", "write the binary trace to this file")
	in := flag.String("in", "", "read a binary trace from this file instead of generating")
	stats := flag.Bool("stats", false, "print trace statistics")
	blocks := flag.Int("blocks", 8, "row blocks for the skew histogram")
	flag.Parse()

	if *list {
		for _, name := range synth.PresetNames() {
			spec, _ := synth.Preset(name)
			fmt.Printf("%-10s items=%-9d tables=%d avg-reduction=%.2f zipf=%.2f motifs=%d\n",
				name, spec.NumItems, spec.Tables, spec.AvgReduction, spec.ZipfExponent, spec.MotifCount)
		}
		return
	}

	tr, err := obtainTrace(*in, *preset, *samples, *itemFrac, *redFrac)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updlrm-datagen: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "updlrm-datagen: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Write(f, tr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "updlrm-datagen: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "updlrm-datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d samples to %s\n", len(tr.Samples), *out)
	}

	if *stats || *out == "" {
		printStats(tr, *blocks)
	}
}

// obtainTrace loads or generates the requested trace.
func obtainTrace(in, preset string, samples int, itemFrac, redFrac float64) (*trace.Trace, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	if preset == "" {
		return nil, fmt.Errorf("need -preset or -in (use -list for the catalogue)")
	}
	spec, err := synth.Preset(preset)
	if err != nil {
		return nil, err
	}
	if itemFrac != 1.0 || redFrac != 1.0 {
		spec = synth.Scaled(spec, itemFrac, redFrac)
	}
	return spec.Generate(samples)
}

// printStats reports the statistics every partitioner consumes.
func printStats(tr *trace.Trace, blocks int) {
	fmt.Printf("samples:        %d\n", len(tr.Samples))
	fmt.Printf("tables:         %d\n", tr.NumTables)
	fmt.Printf("rows per table: %v\n", tr.RowsPerTable[:min(4, len(tr.RowsPerTable))])
	fmt.Printf("dense dim:      %d\n", tr.DenseDim)
	fmt.Printf("avg reduction:  %.2f\n", tr.AvgReduction())
	for t := 0; t < min(2, tr.NumTables); t++ {
		freq := tr.Frequency(t)
		hist := trace.BlockHistogram(freq, blocks)
		fmt.Printf("table %d: accesses=%d block-skew=%.1fx normalized-blocks=", t, tr.TotalAccesses(t), trace.SkewRatio(hist))
		for i, v := range trace.Normalize(hist) {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Printf("%.3f", v)
		}
		fmt.Println()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
