// Command updlrm-verify checks the functional-correctness contract at a
// configurable scale: the DPU-offloaded engine (every partitioning
// method, both timing engines) and all baselines must produce the same
// CTR predictions as the CPU reference, within float summation-order
// tolerance. It exits non-zero on any divergence — the CI-style gate for
// simulator changes.
//
// The -kernel flag selects the host GEMM tier the UpDLRM engines run:
// "exact" (the default) matches the CPU reference bit for bit and
// passes at -tol 0, while "fast" (AVX2/FMA 8-lane reduction) reorders
// float32 summation and is verified under the tolerance — it passes at
// the default -tol 1e-4 on every preset and is expected to FAIL at
// -tol 0.
//
// Usage:
//
//	updlrm-verify [-preset=read] [-samples=512] [-item-frac=0.01] [-kernel=exact] [-tol=1e-4]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"updlrm/internal/baseline"
	"updlrm/internal/core"
	"updlrm/internal/dlrm"
	"updlrm/internal/hosthw"
	"updlrm/internal/partition"
	"updlrm/internal/synth"
	"updlrm/internal/tensor"
	"updlrm/internal/upmem"
)

func main() {
	preset := flag.String("preset", "read", "workload preset")
	samples := flag.Int("samples", 512, "inference count")
	itemFrac := flag.Float64("item-frac", 0.01, "item-count scale")
	redFrac := flag.Float64("red-frac", 0.5, "reduction scale")
	batch := flag.Int("batch", 64, "batch size")
	dpus := flag.Int("dpus", 256, "DPU count")
	tol := flag.Float64("tol", 1e-4, "max CTR divergence vs the exact CPU reference")
	flag.Float64Var(tol, "tolerance", 1e-4, "alias for -tol")
	kernelName := flag.String("kernel", "exact", "host GEMM tier for the UpDLRM engines (exact|fast)")
	flag.Parse()

	kernel, err := tensor.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "updlrm-verify: %v\n", err)
		os.Exit(2)
	}
	if err := verify(*preset, *samples, *itemFrac, *redFrac, *batch, *dpus, *tol, kernel); err != nil {
		fmt.Fprintf(os.Stderr, "updlrm-verify: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("updlrm-verify: PASS")
}

func verify(preset string, samples int, itemFrac, redFrac float64, batch, dpus int, tol float64, kernel tensor.Kernel) error {
	start := time.Now()
	spec, err := synth.Preset(preset)
	if err != nil {
		return err
	}
	spec = synth.Scaled(spec, itemFrac, redFrac)
	tr, err := spec.Generate(samples)
	if err != nil {
		return err
	}
	model, err := dlrm.New(dlrm.DefaultConfig(tr.RowsPerTable))
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s — %d samples, %d tables x %d items, avg reduction %.1f\n",
		spec.Name, samples, tr.NumTables, tr.RowsPerTable[0], tr.AvgReduction())
	impl := "pure Go"
	if tensor.FastVectorized() {
		impl = "AVX2/FMA"
	}
	fmt.Printf("kernel tier: %v (%s), tolerance %g\n", kernel, impl, tol)

	cpuM, gpuM, pcieM := hosthw.DefaultCPU(), hosthw.DefaultGPU(), hosthw.DefaultPCIe()
	cpu, err := baseline.NewCPU(model, cpuM)
	if err != nil {
		return err
	}
	ref, _, err := baseline.RunTrace(cpu, tr, batch)
	if err != nil {
		return err
	}

	verified := 0
	check := func(name string, got []float32) error {
		verified++
		if len(got) != len(ref) {
			return fmt.Errorf("%s: %d CTRs, want %d", name, len(got), len(ref))
		}
		var worst float64
		for i := range ref {
			if d := math.Abs(float64(ref[i]) - float64(got[i])); d > worst {
				worst = d
			}
		}
		status := "ok"
		if worst > tol {
			status = "DIVERGED"
		}
		fmt.Printf("  %-28s max divergence %.2e  %s\n", name, worst, status)
		if worst > tol {
			return fmt.Errorf("%s diverged by %v (tolerance %v)", name, worst, tol)
		}
		return nil
	}

	hybrid, err := baseline.NewHybrid(model, cpuM, gpuM, pcieM,
		baseline.DefaultHybridConfig(model.Cfg.NumTables()))
	if err != nil {
		return err
	}
	hybridCTR, _, err := baseline.RunTrace(hybrid, tr, batch)
	if err != nil {
		return err
	}
	if err := check("DLRM-Hybrid", hybridCTR); err != nil {
		return err
	}

	fae, err := baseline.NewFAE(model, tr, cpuM, gpuM, pcieM, baseline.DefaultFAEConfig())
	if err != nil {
		return err
	}
	faeCTR, _, err := baseline.RunTrace(fae, tr, batch)
	if err != nil {
		return err
	}
	if err := check("FAE", faeCTR); err != nil {
		return err
	}

	for _, method := range []partition.Method{
		partition.MethodUniform, partition.MethodNonUniform, partition.MethodCacheAware,
	} {
		for _, engine := range []upmem.TimingEngine{upmem.ClosedForm, upmem.EventDriven} {
			cfg := core.DefaultConfig()
			cfg.TotalDPUs = dpus
			cfg.BatchSize = batch
			cfg.Method = method
			cfg.Engine = engine
			cfg.Kernel = kernel
			eng, err := core.New(model, tr, cfg)
			if err != nil {
				return fmt.Errorf("UpDLRM(%v,%v): %w", method, engine, err)
			}
			ctr, _, err := eng.RunTrace(tr, batch)
			if err != nil {
				return fmt.Errorf("UpDLRM(%v,%v): %w", method, engine, err)
			}
			name := fmt.Sprintf("UpDLRM(%v, %v)", method, engine)
			if err := check(name, ctr); err != nil {
				return err
			}
		}
	}

	// Pipelined and heterogeneous variants reuse the CA plan.
	cfg := core.DefaultConfig()
	cfg.TotalDPUs = dpus
	cfg.BatchSize = batch
	cfg.Kernel = kernel
	eng, err := core.New(model, tr, cfg)
	if err != nil {
		return err
	}
	pres, err := eng.RunTracePipelined(tr, batch)
	if err != nil {
		return err
	}
	if err := check("UpDLRM pipelined", pres.CTR); err != nil {
		return err
	}
	hetero, err := core.NewHetero(eng, gpuM, pcieM)
	if err != nil {
		return err
	}
	hctr, _, err := hetero.RunTrace(tr, batch)
	if err != nil {
		return err
	}
	if err := check("UpDLRM-GPU", hctr); err != nil {
		return err
	}

	// Batch-size invariance: the same trace in different batch sizes
	// must predict identically.
	alt, _, err := eng.RunTrace(tr, batch/2+1)
	if err != nil {
		return err
	}
	if err := check("UpDLRM (odd batch size)", alt); err != nil {
		return err
	}

	fmt.Printf("verified %d implementations in %v\n", verified, time.Since(start).Round(time.Millisecond))
	return nil
}
