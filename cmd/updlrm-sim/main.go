// Command updlrm-sim runs DPU micro-benchmarks against the UPMEM
// simulator: the MRAM latency curve, single-kernel lookup sweeps, and
// host transfer costs. It is the quickest way to explore how the
// hardware model responds to configuration changes.
//
// Usage:
//
//	updlrm-sim mram
//	updlrm-sim kernel -reads=2000 -nc=8 -tasklets=14 -engine=event
//	updlrm-sim transfer -dpus=256 -bytes=2048 -ragged
package main

import (
	"flag"
	"fmt"
	"os"

	"updlrm/internal/core"
	"updlrm/internal/dlrm"
	"updlrm/internal/synth"
	"updlrm/internal/upmem"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "mram":
		err = runMRAM(os.Args[2:])
	case "kernel":
		err = runKernel(os.Args[2:])
	case "transfer":
		err = runTransfer(os.Args[2:])
	case "memmap":
		err = runMemMap(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "updlrm-sim: %v\n", err)
		os.Exit(1)
	}
}

func runMRAM(args []string) error {
	fs := flag.NewFlagSet("mram", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	hw := upmem.DefaultConfig()
	fmt.Println("bytes  latency(cycles)  latency(ns)  bandwidth(MB/s)")
	for size := 8; size <= 2048; size *= 2 {
		lat, err := hw.MRAMReadLatency(size)
		if err != nil {
			return err
		}
		ns := hw.CyclesToNs(lat)
		fmt.Printf("%5d  %15.1f  %11.1f  %15.1f\n", size, lat, ns, float64(size)/ns*1e3)
	}
	return nil
}

func runKernel(args []string) error {
	fs := flag.NewFlagSet("kernel", flag.ExitOnError)
	reads := fs.Int("reads", 1000, "MRAM reads in the kernel")
	nc := fs.Int("nc", 8, "values per read (N_c)")
	samples := fs.Int("samples", 64, "batch size (accumulators)")
	tasklets := fs.Int("tasklets", 14, "tasklets per DPU")
	engine := fs.String("engine", "closed", "timing engine: closed or event")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hw := upmem.DefaultConfig()
	hw.Tasklets = *tasklets
	eng := upmem.ClosedForm
	if *engine == "event" {
		eng = upmem.EventDriven
	}
	job := &upmem.KernelJob{
		NumSamples: *samples,
		Width:      *nc,
		Fetch: func(rows []int32, dst []float32) {
			for k := range dst {
				dst[k] = 1
			}
		},
	}
	for i := 0; i < *reads; i++ {
		job.AddRead(i%*samples, *nc, int32(i))
	}
	_, timing, err := upmem.RunKernel(hw, job, eng)
	if err != nil {
		return err
	}
	fmt.Printf("engine:          %s\n", eng)
	fmt.Printf("reads:           %d x %dB\n", timing.Reads, upmem.AlignMRAM(*nc*4))
	fmt.Printf("kernel cycles:   %.0f (%.1f us)\n", timing.Cycles, hw.CyclesToNs(timing.Cycles)/1e3)
	fmt.Printf("pipeline cycles: %.0f\n", timing.PipelineCycles)
	fmt.Printf("dma cycles:      %.0f\n", timing.DMACycles)
	fmt.Printf("tasklet bound:   %.0f\n", timing.TaskletCycles)
	fmt.Printf("bytes read:      %d\n", timing.BytesRead)
	return nil
}

func runTransfer(args []string) error {
	fs := flag.NewFlagSet("transfer", flag.ExitOnError)
	dpus := fs.Int("dpus", 256, "DPU count")
	bytes := fs.Int64("bytes", 2048, "per-DPU buffer size")
	ragged := fs.Bool("ragged", false, "make sizes ragged (DPU i gets bytes + i%7*64)")
	pull := fs.Bool("pull", false, "DPU->CPU direction instead of CPU->DPU")
	pad := fs.Bool("pad", true, "pad ragged buffers to the max size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	hw := upmem.DefaultConfig()
	sizes := make([]int64, *dpus)
	for i := range sizes {
		sizes[i] = *bytes
		if *ragged {
			sizes[i] += int64(i%7) * 64
		}
	}
	dir := upmem.Push
	if *pull {
		dir = upmem.Pull
	}
	st := hw.TransferTime(sizes, *pad, dir)
	fmt.Printf("direction: %s  parallel: %v  payload: %d B  padded: %d B  time: %.1f us\n",
		dir, st.Parallel, st.Bytes, st.PaddedBytes, st.Ns/1e3)
	return nil
}

func runMemMap(args []string) error {
	fs := flag.NewFlagSet("memmap", flag.ExitOnError)
	preset := fs.String("preset", "read", "workload preset")
	itemFrac := fs.Float64("item-frac", 0.005, "item-count scale")
	dpu := fs.Int("dpu", 0, "DPU index to map")
	dpus := fs.Int("dpus", 256, "total DPU count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := synth.Preset(*preset)
	if err != nil {
		return err
	}
	spec = synth.Scaled(spec, *itemFrac, 0.5)
	tr, err := spec.Generate(256)
	if err != nil {
		return err
	}
	model, err := dlrm.New(dlrm.DefaultConfig(tr.RowsPerTable))
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.TotalDPUs = *dpus
	eng, err := core.New(model, tr, cfg)
	if err != nil {
		return err
	}
	layout, err := eng.MemoryMap(*dpu)
	if err != nil {
		return err
	}
	fmt.Printf("DPU %d of %d (%s workload):\n%s", *dpu, *dpus, spec.Name, layout.String())
	stats := eng.PreprocessStats()
	fmt.Printf("fleet: %d B loaded total, max DPU %d B, one-time load %.1f ms\n",
		stats.TotalBytes, stats.MaxDPUBytes, stats.LoadNs/1e6)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `updlrm-sim — DPU micro-benchmarks

subcommands:
  mram      MRAM read latency sweep (Figure 3)
  kernel    one lookup kernel with configurable reads/Nc/tasklets/engine
  transfer  host transfer model (parallel vs ragged, push vs pull)
  memmap    per-DPU MRAM memory map for a partitioned workload`)
}
