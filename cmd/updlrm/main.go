// Command updlrm regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	updlrm [-scale=bench|paper] [-inferences=N] [-dpus=N] <experiment>...
//
// Experiments: table1 table2 fig3 fig5 fig6 fig8 fig9 fig10 fig11
// cachecap ablations all
//
// The bench scale (default) preserves every result shape while running
// in seconds; the paper scale uses §4.1's exact sizes (12,800 inferences,
// full item counts) and can take many minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"updlrm/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "bench", "workload scale: bench or paper")
	inferences := flag.Int("inferences", 0, "override sampled inference count")
	dpus := flag.Int("dpus", 0, "override total DPU count")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "bench":
		scale = experiments.BenchScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "updlrm: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *inferences > 0 {
		scale.Inferences = *inferences
	}
	if *dpus > 0 {
		scale.TotalDPUs = *dpus
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "fig3", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "cachecap", "energy", "hetero", "pipeline", "tasklets", "dpuscaling", "quant", "drift", "writeaware", "updrift", "ablations"}
	}
	for _, name := range args {
		if err := run(name, scale); err != nil {
			fmt.Fprintf(os.Stderr, "updlrm: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// run executes one named experiment and prints its report(s).
func run(name string, scale experiments.Scale) error {
	start := time.Now()
	var reps []*experiments.Report
	switch name {
	case "table1":
		rep, _, err := experiments.Table1(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "table2":
		reps = append(reps, experiments.Table2())
	case "fig3":
		rep, _, err := experiments.Figure3()
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig5":
		rep, _, err := experiments.Figure5(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig6":
		rep, _, err := experiments.Figure6(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig8":
		rep, _, err := experiments.Figure8(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig9":
		rep, _, err := experiments.Figure9(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig10":
		rep, _, err := experiments.Figure10(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "fig11":
		rep, _, err := experiments.Figure11(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "cachecap":
		rep, _, err := experiments.CacheCapacity(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "quant":
		rep, _, err := experiments.Quantization(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "drift":
		rep, _, err := experiments.Drift(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "writeaware":
		rep, _, err := experiments.WriteAware(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "updrift":
		rep, _, err := experiments.UpdateDrift(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "tasklets":
		rep, _, err := experiments.TaskletSweep(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "dpuscaling":
		rep, _, err := experiments.DPUScaling(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "energy":
		rep, _, err := experiments.Energy(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "hetero":
		rep, _, err := experiments.Hetero(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "pipeline":
		rep, _, err := experiments.Pipeline(scale)
		if err != nil {
			return err
		}
		reps = append(reps, rep)
	case "ablations":
		repA, _, err := experiments.AblationEngines()
		if err != nil {
			return err
		}
		repB, _, err := experiments.AblationTransfer()
		if err != nil {
			return err
		}
		reps = append(reps, repA, repB)
	default:
		return fmt.Errorf("unknown experiment (see -help)")
	}
	for _, rep := range reps {
		fmt.Println(rep.String())
	}
	fmt.Printf("(%s completed in %v at scale %q)\n\n", name, time.Since(start).Round(time.Millisecond), scale.Name)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `updlrm — regenerate the UpDLRM paper's evaluation

usage: updlrm [flags] <experiment>...

experiments:
  table1    workload configurations
  table2    hardware configurations
  fig3      MRAM read latency vs transfer size
  fig5      row-block access skew (Goodreads/Movie/Twitch)
  fig6      per-partition accesses with and without caching (Movie)
  fig8      inference speedup of all four systems over DLRM-CPU
  fig9      embedding-layer speedup of U/NU/CA partitioning
  fig10     embedding latency breakdown (GoodReads)
  fig11     DPU lookup time vs avg reduction and lookup size
  cachecap  cache capacity sensitivity (§3.3)
  quant     int8-quantized EMTs vs fp32 (extension)
  drift     profile staleness study (extension)
  writeaware read-only vs write-aware partitioning (extension)
  updrift   online-update drift with hot-set migration (extension)
  tasklets  tasklet-count sensitivity (why §4.1 uses 14)
  dpuscaling fleet-size sensitivity (why 256 DPUs)
  energy    per-run energy estimates (extension; §2.3 motivation)
  hetero    DPU-GPU heterogeneous system (§6 future work)
  pipeline  batch-pipelined execution (throughput extension)
  ablations timing-engine and transfer-rule ablations
  all       everything above

flags:
`)
	flag.PrintDefaults()
}
