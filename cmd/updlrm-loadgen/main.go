// Command updlrm-loadgen drives the sharded serving runtime with a
// synthetic request stream and reports per-request latency percentiles
// per partitioning method — the tool for exploring the batching-window
// x shard-count x partition-method space the paper's per-batch numbers
// cannot show.
//
// Two load modes:
//
//   - open:   requests arrive on a fixed schedule at -qps regardless of
//     completion (an open-loop generator; queueing shows up as latency).
//   - closed: -concurrency workers issue requests back-to-back (a
//     closed-loop generator; latency caps throughput).
//
// A serving-tier hot-row cache (-cachepct, % of embedding storage) can
// be placed in front of the DPUs: the table then also reports the
// cache hit rate and total modeled MRAM traffic, and the shed column
// reports admission-control drops at a full queue (-queue). With
// -pipeline, shard workers overlap consecutive queued micro-batches on
// the LINK/DPUS/HOST schedule; the pipe column reports the modeled
// throughput speedup from that overlap (1.00x when the shard never
// backlogs, "-" when pipelining is off).
//
// -prio mixes QoS classes into the stream as "crit:normal:batch"
// integer weights (e.g. -prio 1:0:9 is 10% latency-critical ranking
// traffic over a best-effort backfill flood). The percentile table then
// grows one row per class under each method — so the per-class latency
// isolation and which class admission control shed are visible — plus
// the all-traffic summary row.
//
// -membudget deploys the pressure governor over the run: a byte budget
// covering the hot cache, engine arenas and queued requests. At the
// high watermark the governor shrinks the cache and caps arena growth;
// at the critical watermark it sheds Batch- then Normal-class admission
// (never Critical), recovering in reverse order as pressure falls. The
// table grows a pressure column (peak band and final tracked/budget
// ratio; per-class rows break sheds down as pressure/slo counts).
// -slo sets the Critical class's latency target, turning on SLO-driven
// admission: the scheduler publishes per-class predicted waits, sheds
// lower classes early when Critical is predicted to miss, and orders
// each micro-batch window earliest-deadline-first.
//
// -kernel fast runs every shard's host dense compute on the AVX2/FMA
// kernel tier (runtime CPUID detection with a pure-Go fallback);
// predictions then differ from the exact tier by float summation order
// only.
//
// Usage:
//
//	updlrm-loadgen -preset home -requests 2000 -qps 20000 -shards 4
//	updlrm-loadgen -mode closed -concurrency 64 -kernel fast
//	updlrm-loadgen -mode closed -concurrency 64 -methods cacheaware,uniform
//	updlrm-loadgen -preset read -cachepct 5 -methods cacheaware
//	updlrm-loadgen -mode closed -concurrency 64 -pipeline
//	updlrm-loadgen -prio 1:0:9 -qps 50000 -queue 256
//	updlrm-loadgen -prio 1:1:8 -membudget 4194304 -slo 2ms
//	updlrm-loadgen -cluster 3 -transport tcp -mode closed
//	updlrm-loadgen -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -cluster N serves every method run from an N-node table-partitioned
// cluster behind the same Inferencer facade instead of the sharded
// single-process server: -transport chan fans out in-process,
// -transport tcp stands the backends up on loopback sockets and dials
// through the real wire codec. Cluster runs report a per-node fabric
// table (RPCs, errors, hedges, failovers, wire bytes) and the modeled
// interconnect time next to the usual percentiles.
//
// -cpuprofile/-memprofile write standard pprof profiles of the run, so
// hot-spot hunts over the serving stack need no ad-hoc harness.
//
// Observability: -metrics ADDR exposes the current run's instrument
// registry at /metrics (Prometheus text format) and its sampled
// per-request stage traces at /debug/traces for the duration of the
// run; -live renders an in-terminal dashboard (throughput, per-class
// percentiles, cache hit rate, router backlog, update coherence)
// refreshing once per second; -tracesample sets the trace sampling
// rate. Each method run gets a fresh registry — the endpoints follow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"updlrm"
	"updlrm/internal/metrics"
)

func main() {
	var (
		preset      = flag.String("preset", "home", "workload preset (see updlrm.PresetNames)")
		itemFrac    = flag.Float64("scale", 0.005, "item-count scale factor")
		redFrac     = flag.Float64("redscale", 0.5, "reduction-degree scale factor")
		tables      = flag.Int("tables", 4, "number of embedding tables")
		profileN    = flag.Int("profile", 512, "profiling-trace samples (partitioner input)")
		requests    = flag.Int("requests", 2000, "requests to issue per method")
		mode        = flag.String("mode", "open", "load mode: open or closed")
		qps         = flag.Float64("qps", 20000, "target arrival rate (open mode)")
		concurrency = flag.Int("concurrency", 64, "in-flight workers (closed mode)")
		shards      = flag.Int("shards", 4, "engine replicas")
		maxBatch    = flag.Int("maxbatch", 32, "micro-batch size cap")
		window      = flag.Duration("window", 200*time.Microsecond, "batching window")
		dpus        = flag.Int("dpus", 64, "DPUs per engine replica")
		queueDepth  = flag.Int("queue", 0, "request queue depth (0 = default); full queues shed with 503-style errors")
		pipeline    = flag.Bool("pipeline", false,
			"overlap consecutive micro-batches per shard on the LINK/DPUS/HOST schedule")
		cachePct = flag.Float64("cachepct", 0,
			"serving-tier hot-row cache size as %% of total embedding storage (0 disables)")
		methodsFlag = flag.String("methods", "uniform,nonuniform,cacheaware",
			"comma-separated partitioning methods to compare")
		kernelName = flag.String("kernel", "exact",
			"host GEMM tier (exact|fast): exact is bit-stable, fast runs the AVX2/FMA kernels")
		writePct = flag.Float64("writepct", 0,
			"online-update intensity: row deltas per 100 embedding lookups (0 disables the update stream)")
		drift = flag.Bool("drift", false,
			"migrate the hot set halfway through the run: rotate every row index (requests and updates) by half the table")
		prio = flag.String("prio", "",
			"QoS traffic mix as crit:normal:batch integer weights (e.g. 1:0:9); empty serves everything as normal class")
		membudget = flag.Int64("membudget", 0,
			"pressure-governor memory budget in bytes over hot cache + arenas + queued requests (0 = ungoverned)")
		sloTarget = flag.Duration("slo", 0,
			"Critical-class latency SLO enabling predicted-wait admission and EDF batching (0 = depth-only admission)")
		clusterNodes = flag.Int("cluster", 0,
			"serve from an N-node table-partitioned cluster instead of the sharded single-process server (0 disables)")
		transport = flag.String("transport", "chan",
			"cluster fabric (with -cluster): chan (in-process) or tcp (loopback sockets, real wire codec)")
		cpuprofile = flag.String("cpuprofile", "",
			"write a CPU profile of the whole run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "",
			"write a heap profile to this file after the run completes")
		metricsAddr = flag.String("metrics", "",
			"serve /metrics (Prometheus text format) and /debug/traces on this address for the run (e.g. 127.0.0.1:9090)")
		liveDash = flag.Bool("live", false,
			"render an in-terminal serving dashboard refreshing once per second")
		traceEvery = flag.Int("tracesample", 64,
			"trace 1 in N requests into the /debug/traces ring (with -metrics)")
	)
	flag.Parse()

	// Profiling hooks for hot-spot hunts: the CPU profile covers the
	// entire run (all methods), the heap profile snapshots the end
	// state. log.Fatal skips deferred stops, so profiles from a failed
	// run are truncated — acceptable for a diagnostics flag.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	methods, err := parseMethods(*methodsFlag)
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := updlrm.ParseKernel(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := parsePrio(*prio)
	if err != nil {
		log.Fatal(err)
	}

	// One workload for every method: a profiling trace to partition
	// from, and a disjoint request stream to replay.
	spec, err := updlrm.Preset(*preset)
	if err != nil {
		log.Fatal(err)
	}
	spec = updlrm.Scaled(spec, *itemFrac, *redFrac)
	spec.Tables = *tables
	stream, err := spec.Generate(*profileN + *requests)
	if err != nil {
		log.Fatal(err)
	}
	profile := &updlrm.Trace{
		NumTables:    stream.NumTables,
		RowsPerTable: stream.RowsPerTable,
		DenseDim:     stream.DenseDim,
		Samples:      stream.Samples[:*profileN],
	}
	live := stream.Samples[*profileN:]
	classes := assignClasses(len(live), mix)

	// The online-update stream: -writepct row deltas per 100 lookups of
	// the live stream, drawn from the same popularity distribution
	// (training touches the rows inference reads). With -drift, the
	// second half of both streams rotates its row indices by half the
	// table — a hot-set migration the cache and its TinyLFU filter must
	// re-learn while updates keep invalidating residents.
	var lookups int64
	for _, s := range live {
		for _, bag := range s.Sparse {
			lookups += int64(len(bag))
		}
	}
	updates, err := spec.Updates(int(*writePct / 100 * float64(lookups)))
	if err != nil {
		log.Fatal(err)
	}
	if *drift {
		live = append([]updlrm.Sample(nil), live...)
		for i := len(live) / 2; i < len(live); i++ {
			live[i] = rotateSample(live[i], stream.RowsPerTable)
		}
		for i := len(updates) / 2; i < len(updates); i++ {
			u := &updates[i]
			u.Row = rotateRow(u.Row, stream.RowsPerTable[u.Table])
		}
	}

	model, err := updlrm.NewModel(updlrm.DefaultModelConfig(stream.RowsPerTable))
	if err != nil {
		log.Fatal(err)
	}

	// Hot-row cache budget: a percentage of the model's total embedding
	// storage, shared by every shard of a method's server.
	var tableBytes int64
	for _, rows := range stream.RowsPerTable {
		tableBytes += int64(rows) * int64(model.Cfg.EmbDim) * 4
	}
	cacheBytes := int64(*cachePct / 100 * float64(tableBytes))

	if *clusterNodes > 0 {
		fmt.Printf("loadgen: %s mode, %d requests/method, %d-node cluster (%s transport), maxbatch %d, window %v, %d DPUs total\n",
			*mode, *requests, *clusterNodes, *transport, *maxBatch, *window, *dpus)
	} else {
		fmt.Printf("loadgen: %s mode, %d requests/method, %d shards, maxbatch %d, window %v, %d DPUs/shard\n",
			*mode, *requests, *shards, *maxBatch, *window, *dpus)
	}
	if kernel != updlrm.KernelExact {
		impl := "pure Go fallback"
		if updlrm.FastKernelVectorized() {
			impl = "AVX2/FMA"
		}
		fmt.Printf("kernel tier: %v (%s)\n", kernel, impl)
	}
	if cacheBytes > 0 {
		fmt.Printf("hot-row cache: %.1f%% of %d KB embedding storage = %d KB\n",
			*cachePct, tableBytes/1024, cacheBytes/1024)
	}
	if *prio != "" {
		fmt.Printf("QoS mix (crit:normal:batch): %s\n", *prio)
	}
	if len(updates) > 0 {
		fmt.Printf("update stream: %d row deltas (%.1f per 100 lookups), drift %v\n",
			len(updates), *writePct, *drift)
	}
	if *membudget > 0 {
		fmt.Printf("pressure governor: %d KB budget (cache shrink at high, class shedding at critical)\n",
			*membudget/1024)
	}
	if *sloTarget > 0 {
		fmt.Printf("SLO admission: critical target %v (predicted-wait shedding of lower classes, EDF batching)\n",
			*sloTarget)
	}
	fmt.Println()

	// Observability surfaces, shared across method runs: each run gets
	// its own registry/tracer (instrument registration is per server),
	// and the listener/dashboard follow the swaps.
	lobs, err := newLiveObs(*metricsAddr, *liveDash)
	if err != nil {
		log.Fatal(err)
	}
	defer lobs.close()

	var rows [][]string
	for _, m := range methods {
		ecfg := updlrm.DefaultEngineConfig()
		ecfg.TotalDPUs = *dpus
		ecfg.Method = m.method
		ecfg.Kernel = kernel
		scfg := updlrm.ServerConfig{
			Shards:      *shards,
			MaxBatch:    *maxBatch,
			BatchWindow: *window,
			QueueDepth:  *queueDepth,
			Pipeline:    *pipeline,
			HotCache:    updlrm.HotCacheConfig{CapacityBytes: cacheBytes},
			Governor:    updlrm.GovernorConfig{BudgetBytes: *membudget},
		}
		if *sloTarget > 0 {
			scfg.Classes[updlrm.CriticalClass].SLOTargetNs = int64(*sloTarget)
		}
		var reg *updlrm.MetricsRegistry
		var tracer *updlrm.Tracer
		if lobs != nil {
			reg = updlrm.NewMetricsRegistry()
			tracer = updlrm.NewTracer(*traceEvery, 256)
			scfg.Metrics = reg
			scfg.Tracer = tracer
		}
		inf, front, cleanup, err := newInferencer(model, profile, ecfg, scfg, *clusterNodes, *transport, reg)
		if err != nil {
			log.Fatalf("loadgen: %s: %v", m.name, err)
		}
		lobs.attach(m.name, inf, reg, tracer)
		start := time.Now()
		updErr := make(chan error, 1)
		go func() { updErr <- runUpdates(inf, updates, model.Cfg.EmbDim) }()
		switch *mode {
		case "open":
			err = runOpen(inf, live, classes, *qps)
		case "closed":
			err = runClosed(inf, live, classes, *concurrency)
		default:
			log.Fatalf("loadgen: unknown mode %q", *mode)
		}
		if uerr := <-updErr; err == nil {
			err = uerr
		}
		wall := time.Since(start)
		if err != nil {
			log.Fatalf("loadgen: %s: %v", m.name, err)
		}
		st := inf.Stats()
		if front != nil {
			printClusterStats(m.name, front.ClusterStats())
		}
		lobs.detach()
		cleanup()
		rows = append(rows, []string{
			m.name, "all",
			fmt.Sprintf("%d", st.Requests),
			fmt.Sprintf("%.1f%%", 100*st.ShedRate()),
			fmt.Sprintf("%.0f", st.ThroughputRPS),
			fmt.Sprintf("%.1f", st.AvgBatchSize),
			metrics.FormatNs(st.P50Ns),
			metrics.FormatNs(st.P95Ns),
			metrics.FormatNs(st.P99Ns),
			metrics.FormatNs(st.QueueP50Ns),
			metrics.FormatNs(st.QueueP99Ns),
			fmt.Sprintf("%.1f%%", 100*st.CacheHitRate),
			fmt.Sprintf("%d", st.MRAMBytesRead/1024),
			pipeCell(st.PipelineSpeedup),
			updCell(st.UpdatedRows, wall),
			invalCell(len(updates), st.CacheInvalidations),
			govCell(st),
		})
		// With a QoS mix, one row per class with traffic: the per-class
		// latency isolation and which class the admission control shed.
		// Without -prio everything is Normal and the class rows would
		// just repeat the "all" row.
		if *prio == "" {
			continue
		}
		for c := updlrm.RequestClass(0); c < updlrm.NumRequestClasses; c++ {
			cs := st.PerClass[c]
			if cs.Requests+cs.Shed == 0 {
				continue
			}
			rows = append(rows, []string{
				m.name, c.String(),
				fmt.Sprintf("%d", cs.Requests),
				fmt.Sprintf("%.1f%%", 100*cs.ShedRate()),
				"-", "-",
				metrics.FormatNs(cs.P50Ns),
				metrics.FormatNs(cs.P95Ns),
				metrics.FormatNs(cs.P99Ns),
				metrics.FormatNs(cs.QueueP50Ns),
				metrics.FormatNs(cs.QueueP99Ns),
				"-", "-", "-", "-", "-",
				shedCauseCell(cs),
			})
		}
	}

	fmt.Print(metrics.Table(
		[]string{"method", "class", "requests", "shed", "rps", "avg batch", "p50", "p95", "p99",
			"q.p50", "q.p99", "cache hit", "mram KB", "pipe", "upd/s", "inval", "pressure"},
		rows))
}

// newInferencer builds the deployment the run drives: the sharded
// single-process server by default, or — with nodes > 0 — a
// table-partitioned cluster over the chosen fabric. The chan transport
// fans out over in-process calls; tcp serves every backend on a
// loopback listener and dials through the real wire codec, so the run
// exercises framing, connection reuse and the modeled NetworkNs term
// end to end. The returned cleanup closes the frontend before the
// backends' listeners. The *ClusterFrontend is non-nil only in cluster
// mode (for per-node fabric stats).
func newInferencer(model *updlrm.Model, profile *updlrm.Trace, ecfg updlrm.EngineConfig,
	scfg updlrm.ServerConfig, nodes int, transport string,
	reg *updlrm.MetricsRegistry) (updlrm.Inferencer, *updlrm.ClusterFrontend, func(), error) {
	if nodes <= 0 {
		srv, err := updlrm.NewServer(model, profile, ecfg, scfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return srv, nil, srv.Close, nil
	}
	ccfg := updlrm.ClusterConfig{
		MaxBatch:    scfg.MaxBatch,
		BatchWindow: scfg.BatchWindow,
		QueueDepth:  scfg.QueueDepth,
		HotCache:    scfg.HotCache,
		Governor:    scfg.Governor,
		Metrics:     reg,
	}
	switch transport {
	case "chan":
		ccfg.Nodes = make([]string, nodes)
		for i := range ccfg.Nodes {
			ccfg.Nodes[i] = fmt.Sprintf("node-%d", i)
		}
		front, _, err := updlrm.NewCluster(model, profile, ecfg, ccfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return front, front, front.Close, nil
	case "tcp":
		lns := make([]net.Listener, nodes)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, nil, err
			}
			lns[i] = ln
			ccfg.Nodes = append(ccfg.Nodes, ln.Addr().String())
		}
		var servers []*updlrm.ClusterBackendServer
		fail := func(err error) (updlrm.Inferencer, *updlrm.ClusterFrontend, func(), error) {
			for _, s := range servers {
				s.Close()
			}
			for _, ln := range lns {
				ln.Close()
			}
			return nil, nil, nil, err
		}
		for i, ln := range lns {
			b, err := updlrm.NewClusterBackend(model, profile, ecfg, ccfg, ccfg.Nodes[i])
			if err != nil {
				return fail(err)
			}
			servers = append(servers, updlrm.ServeClusterBackend(ln, b))
		}
		front, err := updlrm.DialCluster(model, profile, ecfg, ccfg)
		if err != nil {
			return fail(err)
		}
		cleanup := func() {
			front.Close()
			for _, s := range servers {
				s.Close()
			}
		}
		return front, front, cleanup, nil
	default:
		return nil, nil, nil, fmt.Errorf("loadgen: unknown -transport %q (want chan or tcp)", transport)
	}
}

// printClusterStats reports the fabric view of a cluster run: per-node
// RPC traffic and the modeled interconnect total.
func printClusterStats(method string, cs updlrm.ClusterServingStats) {
	rows := make([][]string, 0, len(cs.Nodes))
	for _, n := range cs.Nodes {
		state := "up"
		if n.Degraded {
			state = "degraded"
		}
		gov := "-"
		if n.GovernorBand != "" {
			gov = fmt.Sprintf("%s %.2f", n.GovernorBand, n.Pressure)
		}
		rows = append(rows, []string{
			n.Node, state,
			fmt.Sprintf("%d", n.Lookups),
			fmt.Sprintf("%d", n.Updates),
			fmt.Sprintf("%d", n.Errors),
			fmt.Sprintf("%d", n.Hedges),
			fmt.Sprintf("%d", n.Failovers),
			fmt.Sprintf("%d", n.BytesSent/1024),
			fmt.Sprintf("%d", n.BytesRecv/1024),
			gov,
		})
	}
	fmt.Printf("cluster fabric (%s): %d gather batches, %s modeled network time\n",
		method, cs.GatherBatches, metrics.FormatNs(cs.NetworkNs))
	fmt.Print(metrics.Table(
		[]string{"node", "state", "lookups", "updates", "errors", "hedges", "failovers", "sent KB", "recv KB", "governor"},
		rows))
	fmt.Println()
}

// parsePrio parses a "crit:normal:batch" integer-weight mix; an empty
// string means all traffic is Normal (the pre-QoS behaviour).
func parsePrio(s string) ([3]int, error) {
	var mix [3]int
	if s == "" {
		mix[updlrm.NormalClass] = 1
		return mix, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return mix, fmt.Errorf("loadgen: -prio %q: want crit:normal:batch", s)
	}
	order := []updlrm.RequestClass{updlrm.CriticalClass, updlrm.NormalClass, updlrm.BatchClass}
	total := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return mix, fmt.Errorf("loadgen: -prio %q: bad weight %q", s, p)
		}
		mix[order[i]] = w
		total += w
	}
	if total == 0 {
		return mix, fmt.Errorf("loadgen: -prio %q: all weights zero", s)
	}
	return mix, nil
}

// assignClasses tags the request stream with QoS classes in the mix's
// proportions, deterministically (fixed seed) so every method serves
// the same classed stream.
func assignClasses(n int, mix [3]int) []updlrm.RequestClass {
	total := 0
	for _, w := range mix {
		total += w
	}
	rng := rand.New(rand.NewSource(42))
	classes := make([]updlrm.RequestClass, n)
	for i := range classes {
		pick := rng.Intn(total)
		for c, w := range mix {
			if pick < w {
				classes[i] = updlrm.RequestClass(c)
				break
			}
			pick -= w
		}
	}
	return classes
}

// pipeCell formats the pipeline-speedup column: "-" when pipelining
// was off (no pipelined batches ran), the modeled speedup otherwise.
func pipeCell(speedup float64) string {
	if speedup == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", speedup)
}

// rotateRow shifts a row index by half its table, wrapping — the
// -drift hot-set migration (popularity shape preserved, hot set moved).
func rotateRow(row int32, rows int) int32 {
	return int32((int(row) + rows/2) % rows)
}

// rotateSample deep-copies a sample with every sparse index rotated.
func rotateSample(s updlrm.Sample, rowsPerTable []int) updlrm.Sample {
	out := updlrm.Sample{Dense: s.Dense, Sparse: make([][]int32, len(s.Sparse))}
	for t, bag := range s.Sparse {
		rot := make([]int32, len(bag))
		for i, r := range bag {
			rot[i] = rotateRow(r, rowsPerTable[t])
		}
		out.Sparse[t] = rot
	}
	return out
}

// updCell formats the update-throughput column: applied row deltas per
// second of the run's wall clock, "-" when no update stream ran.
func updCell(rows int64, wall time.Duration) string {
	if rows == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(rows)/wall.Seconds())
}

// govCell formats the pressure column for the all-traffic row: the
// governor's peak band over the run and its final tracked/budget ratio
// ("-" when the run was ungoverned; cluster frontends report per-node
// governor state in the fabric table instead).
func govCell(st updlrm.ServerStats) string {
	if st.GovernorBudgetBytes == 0 {
		return "-"
	}
	return fmt.Sprintf("%s %.2f", st.GovernorPeakBand, st.GovernorPressure)
}

// shedCauseCell breaks a class row's sheds down by cause as
// "pressure/slo" counts ("-" when neither the governor ladder nor SLO
// admission refused anything from the class; full-queue sheds are the
// remainder of the shed column).
func shedCauseCell(cs updlrm.ClassStats) string {
	if cs.ShedPressure+cs.ShedSLO == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d", cs.ShedPressure, cs.ShedSLO)
}

// invalCell formats the invalidation column: hot-cache entries evicted
// as stale by the update stream ("-" when no update stream ran; 0 with
// an update stream means nothing it touched was cached).
func invalCell(updates int, inval int64) string {
	if updates == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", inval)
}

// runUpdates streams row deltas through the server's update lane in
// chunks, concurrently with the request load, retrying on a full update
// queue. A nil/empty stream returns immediately.
func runUpdates(srv updlrm.Inferencer, ups []updlrm.RowUpdate, dim int) error {
	if len(ups) == 0 {
		return nil
	}
	ctx := context.Background()
	vec := make([]float32, dim)
	for i := range vec {
		vec[i] = 1e-4
	}
	const chunk = 64
	for lo := 0; lo < len(ups); lo += chunk {
		hi := lo + chunk
		if hi > len(ups) {
			hi = len(ups)
		}
		deltas := make([]updlrm.Delta, hi-lo)
		for i, u := range ups[lo:hi] {
			deltas[i] = updlrm.Delta{Table: u.Table, Row: u.Row, Vec: vec}
		}
		for {
			err := srv.ApplyDeltas(ctx, deltas)
			if errors.Is(err, updlrm.ErrUpdateOverloaded) {
				time.Sleep(50 * time.Microsecond)
				continue
			}
			if err != nil {
				return err
			}
			break
		}
	}
	return nil
}

type namedMethod struct {
	name   string
	method updlrm.PartitionMethod
}

func parseMethods(s string) ([]namedMethod, error) {
	var out []namedMethod
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		switch name {
		case "uniform":
			out = append(out, namedMethod{name, updlrm.Uniform})
		case "nonuniform":
			out = append(out, namedMethod{name, updlrm.NonUniform})
		case "cacheaware":
			out = append(out, namedMethod{name, updlrm.CacheAware})
		case "":
		default:
			return nil, fmt.Errorf("loadgen: unknown method %q (want uniform, nonuniform, cacheaware)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no methods selected")
	}
	return out, nil
}

// runOpen replays samples on a fixed arrival schedule at target qps;
// each arrival gets its own goroutine, so slow service shows up as
// queueing latency rather than throttled arrivals. Requests the server
// sheds at a full queue (ErrServerOverloaded) are dropped, as an open
// load generator's clients would be — the shed rate column reports
// them.
func runOpen(srv updlrm.Inferencer, samples []updlrm.Sample, classes []updlrm.RequestClass, qps float64) error {
	if qps <= 0 {
		return fmt.Errorf("qps must be positive")
	}
	ctx := context.Background()
	interval := time.Duration(float64(time.Second) / qps)
	var wg sync.WaitGroup
	errs := make(chan error, len(samples))
	start := time.Now()
	for i, s := range samples {
		if d := start.Add(time.Duration(i) * interval).Sub(time.Now()); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(s updlrm.Sample, class updlrm.RequestClass) {
			defer wg.Done()
			_, err := srv.Predict(ctx, updlrm.ServeRequest{Dense: s.Dense, Sparse: s.Sparse, Class: class})
			if err != nil && !errors.Is(err, updlrm.ErrServerOverloaded) {
				errs <- err
			}
		}(s, classes[i])
	}
	wg.Wait()
	close(errs)
	return firstErr(errs)
}

// runClosed issues requests back-to-back from a fixed worker pool. The
// first error stops the feed, so a failing shard cannot deadlock the
// generator against a pool of dead workers.
func runClosed(srv updlrm.Inferencer, samples []updlrm.Sample, classes []updlrm.RequestClass, concurrency int) error {
	if concurrency <= 0 {
		return fmt.Errorf("concurrency must be positive")
	}
	ctx := context.Background()
	next := make(chan updlrm.ServeRequest)
	errs := make(chan error, concurrency)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range next {
				_, err := srv.Predict(ctx, req)
				if err != nil && !errors.Is(err, updlrm.ErrServerOverloaded) {
					errs <- err
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
feed:
	for i, s := range samples {
		select {
		case next <- updlrm.ServeRequest{Dense: s.Dense, Sparse: s.Sparse, Class: classes[i]}:
		case <-stop:
			break feed
		}
	}
	close(next)
	wg.Wait()
	close(errs)
	return firstErr(errs)
}

func firstErr(errs <-chan error) error {
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "updlrm-loadgen: drive the sharded serving runtime and report latency percentiles\n\n")
		flag.PrintDefaults()
	}
}
