// Live observability for the load generator: a -metrics HTTP listener
// exposing the current method run's registry, and a -live in-terminal
// dashboard refreshing once per second. The loadgen runs one server —
// with one fresh metrics registry — per partitioning method, so both
// surfaces dereference atomic pointers to the current run's state and
// follow the method-to-method server swaps without rebinding.
package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"updlrm"
	"updlrm/internal/metrics"
)

// infHolder wraps the current run's Inferencer so an atomic.Pointer
// can hold any implementation (sharded server or cluster frontend).
type infHolder struct{ inf updlrm.Inferencer }

// liveObs is the shared observability state across method runs. A nil
// *liveObs (observability not requested) no-ops everywhere.
type liveObs struct {
	method atomic.Value // string: current method name
	srv    atomic.Pointer[infHolder]
	reg    atomic.Pointer[updlrm.MetricsRegistry]
	tracer atomic.Pointer[updlrm.Tracer]

	live bool
	stop chan struct{}
	done chan struct{}
}

// newLiveObs starts the requested surfaces: an HTTP listener on
// metricsAddr serving /metrics and /debug/traces (empty addr disables),
// and the terminal dashboard goroutine when live is set. Returns nil
// when neither surface is requested.
func newLiveObs(metricsAddr string, live bool) (*liveObs, error) {
	if metricsAddr == "" && !live {
		return nil, nil
	}
	o := &liveObs{live: live, stop: make(chan struct{}), done: make(chan struct{})}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: -metrics: %w", err)
		}
		// The handler is rebuilt per scrape so it always reads the
		// current method's registry; scrape-rate traffic makes the
		// per-request mux construction irrelevant.
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			updlrm.MetricsHandler(o.reg.Load(), o.tracer.Load()).ServeHTTP(w, r)
		})
		go func() {
			if err := http.Serve(ln, h); err != nil && err != http.ErrServerClosed {
				fmt.Printf("loadgen: metrics listener: %v\n", err)
			}
		}()
		fmt.Printf("metrics: http://%s/metrics, traces: http://%s/debug/traces\n",
			ln.Addr(), ln.Addr())
	}
	if live {
		go o.renderLoop()
	}
	return o, nil
}

// attach points the surfaces at a method run's Inferencer (sharded
// server or cluster frontend) and instruments.
func (o *liveObs) attach(method string, inf updlrm.Inferencer,
	reg *updlrm.MetricsRegistry, tracer *updlrm.Tracer) {
	if o == nil {
		return
	}
	o.method.Store(method)
	o.reg.Store(reg)
	o.tracer.Store(tracer)
	o.srv.Store(&infHolder{inf: inf})
}

// detach clears the Inferencer pointer before it is closed, so the
// dashboard never calls Stats on a closed deployment. The registry
// stays scrapeable (its final counters remain valid) until the next
// attach.
func (o *liveObs) detach() {
	if o == nil {
		return
	}
	o.srv.Store(nil)
}

// close stops the dashboard goroutine and restores the cursor.
func (o *liveObs) close() {
	if o == nil || !o.live {
		return
	}
	close(o.stop)
	<-o.done
}

// renderLoop redraws the dashboard once per second until closed.
func (o *liveObs) renderLoop() {
	defer close(o.done)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var prev updlrm.MetricsSnapshot
	for {
		select {
		case <-o.stop:
			return
		case <-tick.C:
			prev = o.render(prev)
		}
	}
}

// render draws one dashboard frame and returns the registry snapshot
// for the next frame's interval diff.
func (o *liveObs) render(prev updlrm.MetricsSnapshot) updlrm.MetricsSnapshot {
	h := o.srv.Load()
	reg := o.reg.Load()
	if h == nil || reg == nil {
		return prev
	}
	method, _ := o.method.Load().(string)
	st := h.inf.Stats()
	snap := reg.Snapshot()

	var b bytes.Buffer
	fmt.Fprintf(&b, "updlrm-loadgen live — method %s — %s\n\n",
		method, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "throughput %.0f rps   served %d   shed %d (%.1f%%)   avg batch %.1f\n\n",
		st.ThroughputRPS, st.Requests, st.Shed, 100*st.ShedRate(), st.AvgBatchSize)

	rows := [][]string{{
		"all",
		fmt.Sprintf("%d", st.Requests),
		fmt.Sprintf("%d", st.Shed),
		metrics.FormatNs(st.P50Ns), metrics.FormatNs(st.P95Ns), metrics.FormatNs(st.P99Ns),
		metrics.FormatNs(st.QueueP50Ns), metrics.FormatNs(st.QueueP99Ns),
	}}
	for c := updlrm.RequestClass(0); c < updlrm.NumRequestClasses; c++ {
		cs := st.PerClass[c]
		if cs.Requests+cs.Shed == 0 {
			continue
		}
		rows = append(rows, []string{
			c.String(),
			fmt.Sprintf("%d", cs.Requests),
			fmt.Sprintf("%d", cs.Shed),
			metrics.FormatNs(cs.P50Ns), metrics.FormatNs(cs.P95Ns), metrics.FormatNs(cs.P99Ns),
			metrics.FormatNs(cs.QueueP50Ns), metrics.FormatNs(cs.QueueP99Ns),
		})
	}
	b.WriteString(metrics.Table(
		[]string{"class", "served", "shed", "p50", "p95", "p99", "q.p50", "q.p99"}, rows))

	hitPct := 0.0
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		hitPct = 100 * float64(st.CacheHits) / float64(lookups)
	}
	fmt.Fprintf(&b, "\ncache: %.1f%% hit rate (%d hits / %d misses), %d rows resident\n",
		hitPct, st.CacheHits, st.CacheMisses, st.CacheEntries)
	if st.GovernorBudgetBytes > 0 {
		fmt.Fprintf(&b, "governor: %s band (peak %s), pressure %.2f (%d/%d KB), %d transitions, %d cache resizes, %.0f pressure / %.0f slo sheds\n",
			st.GovernorBand, st.GovernorPeakBand, st.GovernorPressure,
			st.GovernorTrackedBytes/1024, st.GovernorBudgetBytes/1024,
			st.GovernorTransitions, st.CacheResizes,
			sumByPrefix(snap, "governor_shed_total{"),
			sumByPrefix(snap, "serve_slo_shed_total{"))
	}
	fmt.Fprintf(&b, "router backlog: %s across shards\n",
		metrics.FormatNs(sumByPrefix(snap, "serve_router_backlog_ns{")))
	fmt.Fprintf(&b, "updates: %.0f applied (%.0f rows), %.0f invalidations, %.0f shed\n",
		snap.Get("serve_update_applied_total"), snap.Get("serve_update_rows_total"),
		snap.Get("serve_update_invalidations_total"), snap.Get("serve_update_shed_total"))
	if prev != nil {
		d := snap.Sub(prev)
		fmt.Fprintf(&b, "last 1s: +%.0f served, +%.0f shed, +%.0f rows updated\n",
			sumByPrefix(d, "serve_requests_total{"),
			sumByPrefix(d, "serve_shed_total{"),
			d.Get("serve_update_rows_total"))
	}

	// Home the cursor and clear before each frame so the dashboard
	// repaints in place instead of scrolling the terminal.
	fmt.Printf("\x1b[H\x1b[2J%s", b.String())
	return snap
}

// sumByPrefix totals every snapshot sample whose key starts with
// prefix — e.g. a per-shard gauge family summed across shards.
func sumByPrefix(s updlrm.MetricsSnapshot, prefix string) float64 {
	var total float64
	for k, v := range s {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}
