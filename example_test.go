package updlrm_test

import (
	"fmt"

	"updlrm"
)

// Example demonstrates the minimal end-to-end flow: generate a workload,
// build a model and an engine, run inference, and inspect the latency
// breakdown.
func Example() {
	// A balanced synthetic workload keeps this example deterministic and
	// instant; Preset("read") etc. give the paper's datasets.
	spec := updlrm.Balanced(2048, 4, 16, 42)
	tr, err := spec.Generate(128)
	if err != nil {
		panic(err)
	}
	model, err := updlrm.NewModel(updlrm.DefaultModelConfig(tr.RowsPerTable))
	if err != nil {
		panic(err)
	}
	cfg := updlrm.DefaultEngineConfig()
	cfg.TotalDPUs = 64
	eng, err := updlrm.NewEngine(model, tr, cfg)
	if err != nil {
		panic(err)
	}
	ctrs, bd, err := eng.RunTrace(tr, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("inferences: %d\n", len(ctrs))
	fmt.Printf("stages charged: push=%v lookup=%v pull=%v\n",
		bd.CPUToDPUNs > 0, bd.DPULookupNs > 0, bd.DPUToCPUNs > 0)
	// Output:
	// inferences: 128
	// stages charged: push=true lookup=true pull=true
}

// Example_baselineComparison compares UpDLRM against the CPU-only
// baseline on the same workload.
func Example_baselineComparison() {
	spec := updlrm.Balanced(2048, 4, 64, 7)
	tr, err := spec.Generate(64)
	if err != nil {
		panic(err)
	}
	model, err := updlrm.NewModel(updlrm.DefaultModelConfig(tr.RowsPerTable))
	if err != nil {
		panic(err)
	}
	cpu, err := updlrm.NewCPUBaseline(model, updlrm.DefaultCPUModel())
	if err != nil {
		panic(err)
	}
	cpuCTR, _, err := updlrm.RunBaseline(cpu, tr, 64)
	if err != nil {
		panic(err)
	}
	cfg := updlrm.DefaultEngineConfig()
	cfg.TotalDPUs = 64
	eng, err := updlrm.NewEngine(model, tr, cfg)
	if err != nil {
		panic(err)
	}
	upCTR, _, err := eng.RunTrace(tr, 64)
	if err != nil {
		panic(err)
	}
	agree := true
	for i := range cpuCTR {
		d := float64(cpuCTR[i]) - float64(upCTR[i])
		if d > 1e-4 || d < -1e-4 {
			agree = false
		}
	}
	fmt.Printf("predictions agree: %v\n", agree)
	// Output:
	// predictions agree: true
}

// Example_partitioners shows how to pin the partitioning strategy and
// tile width (as Figures 9 and 10 do).
func Example_partitioners() {
	spec := updlrm.Balanced(4096, 2, 8, 3)
	tr, err := spec.Generate(64)
	if err != nil {
		panic(err)
	}
	model, err := updlrm.NewModel(updlrm.DefaultModelConfig(tr.RowsPerTable))
	if err != nil {
		panic(err)
	}
	for _, method := range []updlrm.PartitionMethod{updlrm.Uniform, updlrm.NonUniform} {
		cfg := updlrm.DefaultEngineConfig()
		cfg.TotalDPUs = 32
		cfg.Method = method
		cfg.ForcedNc = 8
		eng, err := updlrm.NewEngine(model, tr, cfg)
		if err != nil {
			panic(err)
		}
		plan := eng.Plans()[0]
		fmt.Printf("%v: Nc=%d parts=%d slices=%d\n",
			method, plan.Shape.Nc, plan.Shape.Parts, plan.Shape.Slices)
	}
	// Output:
	// U: Nc=8 parts=4 slices=4
	// NU: Nc=8 parts=4 slices=4
}
